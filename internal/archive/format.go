package archive

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"papimc/internal/pcp"
)

// On-disk format.
//
// Version 1 ("PMLG1\n"): magic, schema, row count, one keyframe+delta
// stream. Still read bit-for-bit compatibly (the golden-archive interop
// test pins it); rollup tiers are rebuilt from the raw rows on load.
//
// Version 2 ("PMLG2\n"), what WriteTo now emits:
//
//	magic "PMLG2\n"
//	schema: uvarint nNames, then per name uvarint pmid, uvarint len, bytes
//	raw tier: uvarint nChunks, then per chunk
//	    uvarint rowCount, uvarint bufLen, bufLen delta-encoded bytes
//	    (each chunk decodes independently: first row is a keyframe)
//	sections: uvarint nSections, then per section
//	    uvarint id, uvarint len, len bytes
//
// Sections are optional and tagged: a reader skips unknown ids, so the
// format is forward-extensible and old v2 archives stay readable when
// new sections appear. Current sections:
//
//	id 1, block index: per chunk varint firstTS, varint lastTS. Lets a
//	    reader sanity-check chunk boundaries; per-column summaries and
//	    the extended-series prefix are recomputed during the mandatory
//	    validation decode, so lying on-disk summaries cannot poison
//	    queries.
//	id 2, rollup tiers: uvarint nTiers, per tier uvarint res,
//	    uvarint evicted, uvarint nBuckets, then per bucket
//	    varint start, uvarint count, uvarint firstTS-start,
//	    uvarint lastTS-firstTS, then per column uvarint first,
//	    varint last-first, varint min-first, varint max-first,
//	    8-byte LE float64 sum, varint delta. Rollups carry history
//	    that may extend past the retained raw rows (raw folded by the
//	    compactor), so they are stored, not re-derived.

const (
	fileMagicV1 = "PMLG1\n"
	fileMagicV2 = "PMLG2\n"

	sectionBlockIndex = 1
	sectionRollups    = 2
)

// Parse caps against hostile inputs.
const (
	maxNames       = 1 << 20
	maxChunks      = 1 << 22
	maxChunkRows   = 1 << 24
	maxSections    = 1 << 10
	maxTiers       = 1 << 10
	maxTierBuckets = 1 << 24
)

// WriteTo serializes the archive in format version 2: the raw chunks
// verbatim (sealed blocks plus the tail), the block index, and the
// rollup tiers.
func (a *Archive) WriteTo(w io.Writer) (int64, error) {
	a.mu.Lock()
	s := a.snap.Load()
	tailBuf := append([]byte(nil), a.tailBuf...)
	a.mu.Unlock()

	var buf []byte
	buf = append(buf, fileMagicV2...)
	buf = binary.AppendUvarint(buf, uint64(len(a.names)))
	for _, e := range a.names {
		buf = binary.AppendUvarint(buf, uint64(e.PMID))
		buf = binary.AppendUvarint(buf, uint64(len(e.Name)))
		buf = append(buf, e.Name...)
	}

	// Raw chunks.
	nChunks := len(s.blocks)
	if len(s.tail) > 0 {
		nChunks++
	}
	buf = binary.AppendUvarint(buf, uint64(nChunks))
	writeChunk := func(count int, b []byte) {
		buf = binary.AppendUvarint(buf, uint64(count))
		buf = binary.AppendUvarint(buf, uint64(len(b)))
		buf = append(buf, b...)
	}
	for _, b := range s.blocks {
		writeChunk(b.count, b.buf)
	}
	if len(s.tail) > 0 {
		writeChunk(len(s.tail), tailBuf)
	}

	// Sections.
	var idx []byte
	for _, b := range s.blocks {
		idx = binary.AppendVarint(idx, b.firstTS)
		idx = binary.AppendVarint(idx, b.lastTS)
	}
	if len(s.tail) > 0 {
		idx = binary.AppendVarint(idx, s.tail[0].Timestamp)
		idx = binary.AppendVarint(idx, s.tail[len(s.tail)-1].Timestamp)
	}
	var rol []byte
	rol = binary.AppendUvarint(rol, uint64(len(s.tiers)))
	for i := range s.tiers {
		t := &s.tiers[i]
		rol = binary.AppendUvarint(rol, uint64(t.res))
		rol = binary.AppendUvarint(rol, uint64(t.evicted))
		rol = binary.AppendUvarint(rol, uint64(t.count()))
		for j := 0; j < t.count(); j++ {
			b := t.at(j)
			rol = binary.AppendVarint(rol, b.Start)
			rol = binary.AppendUvarint(rol, uint64(b.Count))
			rol = binary.AppendUvarint(rol, uint64(b.FirstTS-b.Start))
			rol = binary.AppendUvarint(rol, uint64(b.LastTS-b.FirstTS))
			for c := range b.Cols {
				ca := &b.Cols[c]
				rol = binary.AppendUvarint(rol, ca.First)
				rol = binary.AppendVarint(rol, int64(ca.Last-ca.First))
				rol = binary.AppendVarint(rol, int64(ca.Min-ca.First))
				rol = binary.AppendVarint(rol, int64(ca.Max-ca.First))
				rol = binary.LittleEndian.AppendUint64(rol, math.Float64bits(ca.Sum))
				rol = binary.AppendVarint(rol, ca.Delta)
			}
		}
	}
	buf = binary.AppendUvarint(buf, 2)
	buf = binary.AppendUvarint(buf, sectionBlockIndex)
	buf = binary.AppendUvarint(buf, uint64(len(idx)))
	buf = append(buf, idx...)
	buf = binary.AppendUvarint(buf, sectionRollups)
	buf = binary.AppendUvarint(buf, uint64(len(rol)))
	buf = append(buf, rol...)

	n, err := w.Write(buf)
	return int64(n), err
}

// parser is a bounds-checked varint cursor over a byte slice.
type parser struct {
	buf []byte
	err error
}

func (p *parser) uv() uint64 {
	if p.err != nil {
		return 0
	}
	v, n := binary.Uvarint(p.buf)
	if n <= 0 {
		p.err = fmt.Errorf("%w: truncated uvarint", ErrFormat)
		return 0
	}
	p.buf = p.buf[n:]
	return v
}

func (p *parser) sv() int64 {
	if p.err != nil {
		return 0
	}
	v, n := binary.Varint(p.buf)
	if n <= 0 {
		p.err = fmt.Errorf("%w: truncated varint", ErrFormat)
		return 0
	}
	p.buf = p.buf[n:]
	return v
}

func (p *parser) bytes(n uint64) []byte {
	if p.err != nil {
		return nil
	}
	if uint64(len(p.buf)) < n {
		p.err = fmt.Errorf("%w: truncated field (%d bytes wanted, %d left)", ErrFormat, n, len(p.buf))
		return nil
	}
	b := p.buf[:n]
	p.buf = p.buf[n:]
	return b
}

func (p *parser) f64() float64 {
	b := p.bytes(8)
	if p.err != nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// readSchema parses the name table shared by both format versions.
func readSchema(p *parser) ([]pcp.NameEntry, error) {
	nNames := p.uv()
	if p.err != nil {
		return nil, p.err
	}
	if nNames == 0 || nNames > maxNames {
		return nil, fmt.Errorf("%w: implausible name count %d", ErrFormat, nNames)
	}
	names := make([]pcp.NameEntry, 0, nNames)
	for i := uint64(0); i < nNames; i++ {
		pmid := p.uv()
		ln := p.uv()
		if p.err != nil {
			return nil, p.err
		}
		nb := p.bytes(ln)
		if p.err != nil {
			return nil, fmt.Errorf("%w: truncated name", ErrFormat)
		}
		names = append(names, pcp.NameEntry{PMID: uint32(pmid), Name: string(nb)})
	}
	return names, nil
}

// Read deserializes an archive written by WriteTo, either format
// version. The file's rollup tiers (if any) replace the tier set from
// opts — they can carry history the raw rows no longer do.
func Read(r io.Reader, opts Options) (*Archive, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	magicLen := len(fileMagicV1)
	if len(data) < magicLen {
		return nil, fmt.Errorf("%w: missing magic", ErrFormat)
	}
	switch string(data[:magicLen]) {
	case fileMagicV1:
		return readV1(data[magicLen:], opts)
	case fileMagicV2:
		return readV2(data[magicLen:], opts)
	}
	return nil, fmt.Errorf("%w: missing magic", ErrFormat)
}

// readV1 parses the legacy single-stream format by replaying every row
// through the append path, which also rebuilds the rollup tiers.
func readV1(buf []byte, opts Options) (*Archive, error) {
	p := &parser{buf: buf}
	names, err := readSchema(p)
	if err != nil {
		return nil, err
	}
	a, err := New(names, opts)
	if err != nil {
		return nil, err
	}
	nRows := p.uv()
	if p.err != nil {
		return nil, p.err
	}
	prev := Sample{Values: make([]uint64, len(names))}
	for i := uint64(0); i < nRows; i++ {
		row := Sample{Values: make([]uint64, len(names))}
		if i == 0 {
			row.Timestamp = p.sv()
			for c := range row.Values {
				row.Values[c] = p.uv()
			}
		} else {
			row.Timestamp = prev.Timestamp + p.sv()
			for c := range row.Values {
				row.Values[c] = prev.Values[c] + uint64(p.sv())
			}
		}
		if p.err != nil {
			return nil, p.err
		}
		if err := a.AppendSample(row); err != nil {
			return nil, err
		}
		prev = row
	}
	return a, nil
}

// readV2 parses the chunked format: raw chunks become sealed blocks
// (summaries and extended-series prefixes recomputed from the decoded
// rows, never trusted from disk), known sections are validated, unknown
// sections are skipped.
func readV2(buf []byte, opts Options) (*Archive, error) {
	p := &parser{buf: buf}
	names, err := readSchema(p)
	if err != nil {
		return nil, err
	}
	a, err := New(names, opts)
	if err != nil {
		return nil, err
	}
	width := len(names)

	nChunks := p.uv()
	if p.err != nil {
		return nil, p.err
	}
	if nChunks > maxChunks {
		return nil, fmt.Errorf("%w: implausible chunk count %d", ErrFormat, nChunks)
	}
	blocks := make([]*block, 0, nChunks)
	runningExt := make([]float64, width)
	var prevLast *Sample
	var rawSamples, sealedBytes int
	for i := uint64(0); i < nChunks; i++ {
		count := p.uv()
		blen := p.uv()
		if p.err != nil {
			return nil, p.err
		}
		if count == 0 || count > maxChunkRows {
			return nil, fmt.Errorf("%w: implausible chunk row count %d", ErrFormat, count)
		}
		// Every row costs at least one byte for the timestamp and one
		// per column, so a chunk shorter than that is lying about its
		// row count (and would otherwise pre-allocate on its say-so).
		if blen < count*uint64(1+width) {
			return nil, fmt.Errorf("%w: chunk of %d rows in %d bytes", ErrFormat, count, blen)
		}
		cb := p.bytes(blen)
		if p.err != nil {
			return nil, p.err
		}
		rows, err := decodeRows(cb, int(count), width, true)
		if err != nil {
			return nil, err
		}
		for j := 1; j < len(rows); j++ {
			if rows[j].Timestamp <= rows[j-1].Timestamp {
				return nil, fmt.Errorf("%w: non-monotonic rows in chunk", ErrFormat)
			}
		}
		if prevLast != nil && rows[0].Timestamp <= prevLast.Timestamp {
			return nil, fmt.Errorf("%w: chunks out of order", ErrFormat)
		}
		// Extend the epoch-anchored series across the chunk boundary,
		// then let sealBlock recompute the per-column summaries.
		if prevLast != nil {
			for c := 0; c < width; c++ {
				runningExt[c] += float64(int64(pcp.CounterDelta(prevLast.Values[c], rows[0].Values[c])))
			}
		}
		blk := sealBlock(append([]byte(nil), cb...), rows, runningExt)
		for c := 0; c < width; c++ {
			runningExt[c] += float64(blk.sums[c].Delta)
		}
		blocks = append(blocks, blk)
		rawSamples += blk.count
		sealedBytes += len(blk.buf)
		last := rows[len(rows)-1]
		prevLast = &last
	}

	// Sections.
	nSections := p.uv()
	if p.err != nil {
		return nil, p.err
	}
	if nSections > maxSections {
		return nil, fmt.Errorf("%w: implausible section count %d", ErrFormat, nSections)
	}
	var tiers []tierSnap
	sawRollups := false
	for i := uint64(0); i < nSections; i++ {
		id := p.uv()
		slen := p.uv()
		if p.err != nil {
			return nil, p.err
		}
		payload := p.bytes(slen)
		if p.err != nil {
			return nil, p.err
		}
		switch id {
		case sectionBlockIndex:
			if err := validateBlockIndex(payload, blocks); err != nil {
				return nil, err
			}
		case sectionRollups:
			t, err := parseRollups(payload, width)
			if err != nil {
				return nil, err
			}
			tiers, sawRollups = t, true
		default:
			// Unknown section: skip. Forward compatibility.
		}
	}
	if len(p.buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrFormat, len(p.buf))
	}

	s := &snapshot{
		blocks:      blocks,
		rawSamples:  rawSamples,
		sealedBytes: sealedBytes,
		appended:    rawSamples,
	}
	if prevLast != nil {
		s.last, s.lastTS, s.seenAny = prevLast, prevLast.Timestamp, true
	}
	if sawRollups {
		// The file's tier set wins: it can hold folded history the raw
		// rows no longer cover. Cross-check it against the raw rows.
		if err := validateTiers(tiers, s); err != nil {
			return nil, err
		}
		s.tiers = tiers
		for i := range tiers {
			t := &s.tiers[i]
			if n := len(t.done); n > 0 {
				last := t.done[n-1]
				t.done = t.done[: n-1 : n-1]
				t.cur = &last
			}
			if t.cur != nil && (!s.seenAny || t.cur.LastTS > s.lastTS) {
				s.lastTS, s.seenAny = t.cur.LastTS, true
			}
		}
	} else {
		// No rollup section (e.g. a minimal v2 writer): rebuild the
		// configured tiers from the raw rows.
		s.tiers = a.snap.Load().tiers
		for _, b := range blocks {
			rows, err := a.decodeCached(b)
			if err != nil {
				return nil, err
			}
			for _, row := range rows {
				for ti := range s.tiers {
					s.tiers[ti] = updateTier(&s.tiers[ti], row, a.opts.MaxBuckets)
				}
			}
		}
	}
	a.runningExt = runningExt
	a.snap.Store(s)
	return a, nil
}

// validateBlockIndex cross-checks the on-disk index against the chunk
// boundaries recomputed from the decoded rows.
func validateBlockIndex(payload []byte, blocks []*block) error {
	p := &parser{buf: payload}
	for _, b := range blocks {
		first, last := p.sv(), p.sv()
		if p.err != nil {
			return p.err
		}
		if first != b.firstTS || last != b.lastTS {
			return fmt.Errorf("%w: block index disagrees with chunk (%d..%d vs %d..%d)",
				ErrFormat, first, last, b.firstTS, b.lastTS)
		}
	}
	if len(p.buf) != 0 {
		return fmt.Errorf("%w: %d trailing bytes in block index", ErrFormat, len(p.buf))
	}
	return nil
}

// parseRollups decodes and structurally validates the rollup section:
// ascending distinct resolutions, aligned ascending bucket starts,
// sample spans inside their buckets, extrema bracketing first/last,
// finite sums.
func parseRollups(payload []byte, width int) ([]tierSnap, error) {
	p := &parser{buf: payload}
	nTiers := p.uv()
	if p.err != nil {
		return nil, p.err
	}
	if nTiers > maxTiers {
		return nil, fmt.Errorf("%w: implausible tier count %d", ErrFormat, nTiers)
	}
	tiers := make([]tierSnap, 0, nTiers)
	for i := uint64(0); i < nTiers; i++ {
		res := p.uv()
		evicted := p.uv()
		nBuckets := p.uv()
		if p.err != nil {
			return nil, p.err
		}
		if res == 0 || res > uint64(math.MaxInt64) {
			return nil, fmt.Errorf("%w: bad tier resolution %d", ErrFormat, res)
		}
		if len(tiers) > 0 && int64(res) <= tiers[len(tiers)-1].res {
			return nil, fmt.Errorf("%w: tier resolutions not ascending", ErrFormat)
		}
		if nBuckets > maxTierBuckets {
			return nil, fmt.Errorf("%w: implausible bucket count %d", ErrFormat, nBuckets)
		}
		// Each bucket costs at least 4 header bytes plus 13 per column.
		if minBytes := nBuckets * uint64(4+13*width); uint64(len(p.buf)) < minBytes {
			return nil, fmt.Errorf("%w: %d buckets in %d bytes", ErrFormat, nBuckets, len(p.buf))
		}
		if evicted > 1<<40 {
			return nil, fmt.Errorf("%w: implausible evicted count %d", ErrFormat, evicted)
		}
		t := tierSnap{res: int64(res), evicted: int(evicted)}
		t.done = make([]Bucket, 0, nBuckets)
		for j := uint64(0); j < nBuckets; j++ {
			b := Bucket{Cols: make([]ColAgg, width)}
			b.Start = p.sv()
			count := p.uv()
			dFirst := p.uv()
			dLast := p.uv()
			if p.err != nil {
				return nil, p.err
			}
			if count == 0 || count > maxChunkRows*64 {
				return nil, fmt.Errorf("%w: bad bucket count %d", ErrFormat, count)
			}
			if dFirst >= res || dLast >= res {
				return nil, fmt.Errorf("%w: bucket sample span escapes bucket", ErrFormat)
			}
			b.Count = int(count)
			b.FirstTS = b.Start + int64(dFirst)
			b.LastTS = b.FirstTS + int64(dLast)
			if b.LastTS >= b.Start+int64(res) || alignDown(b.FirstTS, int64(res)) != b.Start {
				return nil, fmt.Errorf("%w: bucket sample span escapes bucket", ErrFormat)
			}
			if n := len(t.done); n > 0 && b.Start <= t.done[n-1].Start {
				return nil, fmt.Errorf("%w: bucket starts not ascending", ErrFormat)
			}
			for c := 0; c < width; c++ {
				ca := &b.Cols[c]
				ca.First = p.uv()
				ca.Last = ca.First + uint64(p.sv())
				ca.Min = ca.First + uint64(p.sv())
				ca.Max = ca.First + uint64(p.sv())
				ca.Sum = p.f64()
				ca.Delta = p.sv()
				if p.err != nil {
					return nil, p.err
				}
				if ca.Min > ca.First || ca.Max < ca.First || ca.Min > ca.Last || ca.Max < ca.Last {
					return nil, fmt.Errorf("%w: bucket extrema do not bracket first/last", ErrFormat)
				}
				if math.IsNaN(ca.Sum) || math.IsInf(ca.Sum, 0) {
					return nil, fmt.Errorf("%w: non-finite bucket sum", ErrFormat)
				}
			}
			t.done = append(t.done, b)
		}
		tiers = append(tiers, t)
	}
	if len(p.buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in rollup section", ErrFormat, len(p.buf))
	}
	return tiers, nil
}

// validateTiers cross-checks parsed tiers against the raw rows: every
// non-empty tier must end at the same newest timestamp (the writer
// updates all tiers on every append), and when raw rows exist that
// timestamp is the newest raw row's.
func validateTiers(tiers []tierSnap, s *snapshot) error {
	newest := int64(math.MinInt64)
	have := false
	for i := range tiers {
		t := &tiers[i]
		if n := len(t.done); n > 0 {
			end := t.done[n-1].LastTS
			if have && end != newest {
				return fmt.Errorf("%w: rollup tiers end at different timestamps", ErrFormat)
			}
			newest, have = end, true
		}
	}
	if have && s.seenAny && newest != s.lastTS {
		return fmt.Errorf("%w: rollup tiers end at %d but raw rows end at %d", ErrFormat, newest, s.lastTS)
	}
	return nil
}
