package archive_test

import (
	"testing"

	"papimc/internal/arch"
	"papimc/internal/archive"
	"papimc/internal/node"
	"papimc/internal/papi"
	"papimc/internal/papi/components/pcpcomp"
	"papimc/internal/pcp"
	"papimc/internal/profile"
	"papimc/internal/simtime"
)

// phases builds the workload used by the cross-validation tests. Emit
// hooks are bound to the given testbed; passing nil yields the same
// phase structure with no live traffic (for replay runs).
func phases(tb *node.Testbed) []profile.Phase {
	emit := func(read bool, bytes int64) func(t0, t1 simtime.Time) {
		if tb == nil {
			return nil
		}
		return func(t0, t1 simtime.Time) {
			tb.Nodes[0].Mem[0].AddTraffic(read, 0, bytes, t0, t1)
		}
	}
	return []profile.Phase{
		{Name: "read-burst", Duration: 100 * simtime.Millisecond, Emit: emit(true, 1<<20)},
		{Name: "idle", Duration: 50 * simtime.Millisecond},
		{Name: "write-burst", Duration: 100 * simtime.Millisecond, Emit: emit(false, 1<<19)},
	}
}

// TestReplayProfileMatchesLive is the acceptance test for the archive
// tier: a profile computed offline from a recording must match the
// profile computed against the live daemon sample-for-sample. The live
// run goes through a Recorder (pmlogger's tee), then the identical
// phase schedule is replayed against the archive on a fresh clock. The
// event list mixes raw PCP counters with a derived bandwidth expression
// so the replay guarantee covers the metricql path too.
func TestReplayProfileMatchesLive(t *testing.T) {
	tb, err := node.NewTestbed(arch.Summit(), 1, node.Options{DisableNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	client, err := pcp.Dial(tb.PMCDAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	rec, err := archive.NewRecorderFromUpstream(client, archive.Options{})
	if err != nil {
		t.Fatal(err)
	}

	lib := papi.NewLibrary(tb.Clock)
	if err := lib.Register(pcpcomp.New(rec)); err != nil {
		t.Fatal(err)
	}
	dcomp, err := node.DerivedComponentOver(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := lib.Register(dcomp); err != nil {
		t.Fatal(err)
	}
	events := tb.NestEventNames(node.ViaPCP)
	events = append(events,
		"derived:::mem.read_bw",
		"derived:::sum(rate(nest.mba*.write_bytes))",
	)
	interval := 10 * simtime.Millisecond
	live, err := profile.Run(lib, events, interval, phases(tb))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Skipped() != 0 {
		t.Fatalf("recorder skipped %d rows", rec.Skipped())
	}
	if rec.Archive().Len() == 0 {
		t.Fatal("recording is empty")
	}

	// Replay: same events, same phase schedule, fresh clock, no live
	// hardware — every value (raw and derived) comes out of the
	// recording.
	clock2 := simtime.NewClock()
	lib2 := papi.NewLibrary(clock2)
	replay := archive.NewReplay(rec.Archive(), clock2)
	if err := lib2.Register(pcpcomp.New(replay)); err != nil {
		t.Fatal(err)
	}
	dcomp2, err := node.DerivedComponentOver(replay)
	if err != nil {
		t.Fatal(err)
	}
	if err := lib2.Register(dcomp2); err != nil {
		t.Fatal(err)
	}
	replayed, err := profile.Run(lib2, events, interval, phases(nil))
	if err != nil {
		t.Fatal(err)
	}

	if len(replayed.Samples) != len(live.Samples) {
		t.Fatalf("replay has %d samples, live has %d", len(replayed.Samples), len(live.Samples))
	}
	var total uint64
	for i, ls := range live.Samples {
		rs := replayed.Samples[i]
		if rs.Time != ls.Time || rs.Phase != ls.Phase {
			t.Fatalf("sample %d: replay (%v, %s) vs live (%v, %s)", i, rs.Time, rs.Phase, ls.Time, ls.Phase)
		}
		for c := range ls.Values {
			total += ls.Values[c]
			if rs.Values[c] != ls.Values[c] {
				t.Errorf("sample %d event %s: replay %d, live %d", i, live.Events[c], rs.Values[c], ls.Values[c])
			}
		}
	}
	if total == 0 {
		t.Error("live profile saw no traffic; the comparison is vacuous")
	}
}

// TestRecorderServesLikeClient checks the tee is transparent: the values
// a profiler reads through the Recorder are the same values a direct
// client fetch sees, and off-schema PMIDs degrade exactly like the
// daemon (StatusNoSuchPMID).
func TestRecorderServesLikeClient(t *testing.T) {
	tb, err := node.NewTestbed(arch.Summit(), 1, node.Options{DisableNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	client, err := pcp.Dial(tb.PMCDAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	rec, err := archive.NewRecorderFromUpstream(client, archive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tb.Nodes[0].Mem[0].AddTraffic(true, 0, 64*100, 0, 0)
	tb.Clock.Advance(50 * simtime.Millisecond)

	res, err := rec.Fetch([]uint32{1, 2, 9999})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := client.Fetch([]uint32{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[0] != direct.Values[0] || res.Values[1] != direct.Values[1] {
		t.Errorf("recorder values %v != direct %v", res.Values[:2], direct.Values)
	}
	if res.Values[2].Status != pcp.StatusNoSuchPMID {
		t.Errorf("off-schema pmid status = %d", res.Values[2].Status)
	}
	if rec.Archive().Len() == 0 {
		t.Error("fetch did not record")
	}
}

// TestReplayBeforeFirstSample: a replay fetch before the recording
// starts serves the first sample (the daemon would have sampled on
// first contact), not an error.
func TestReplayBeforeFirstSample(t *testing.T) {
	a, err := archive.New([]pcp.NameEntry{{PMID: 1, Name: "m"}}, archive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Append(pcp.FetchResult{Timestamp: 1000,
		Values: []pcp.FetchValue{{PMID: 1, Status: pcp.StatusOK, Value: 7}}}); err != nil {
		t.Fatal(err)
	}
	clock := simtime.NewClock() // at t=0, before the first sample at t=1000
	r := archive.NewReplay(a, clock)
	res, err := r.Fetch([]uint32{1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Timestamp != 1000 || res.Values[0].Value != 7 {
		t.Errorf("pre-span fetch = %+v", res)
	}
}

// TestDerivedEquivalenceAcrossTiers is the acceptance test for the
// derived-metrics subsystem: the same expression —
// sum(rate(nest.mba*.read_bytes)) — evaluated against the live daemon,
// through the pmproxy tier, and against a recorded archive agrees
// sample-for-sample, and within the live run the derived bandwidth
// equals the bandwidth computed from the raw counters the profiler
// reads next to it.
func TestDerivedEquivalenceAcrossTiers(t *testing.T) {
	const interval = 10 * simtime.Millisecond
	opts := node.Options{Seed: 7, DisableNoise: true}
	newLib := func(tb *node.Testbed, src interface {
		pcpcomp.Source
		archive.Fetcher
	}) *papi.Library {
		t.Helper()
		lib := papi.NewLibrary(tb.Clock)
		if err := lib.Register(pcpcomp.New(src)); err != nil {
			t.Fatal(err)
		}
		dcomp, err := node.DerivedComponentOver(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := lib.Register(dcomp); err != nil {
			t.Fatal(err)
		}
		return lib
	}

	// --- Leg 1: live daemon, teed through a Recorder. -------------------
	tb1, err := node.NewTestbed(arch.Summit(), 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer tb1.Close()
	client1, err := pcp.Dial(tb1.PMCDAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer client1.Close()
	rec, err := archive.NewRecorderFromUpstream(client1, archive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	events := tb1.NestEventNames(node.ViaPCP)
	nraw := len(events)
	events = append(events, "derived:::sum(rate(nest.mba*.read_bytes))")
	live, err := profile.Run(newLib(tb1, rec), events, interval, phases(tb1))
	if err != nil {
		t.Fatal(err)
	}

	// Within the live run: the derived bandwidth must equal the rate
	// computed from the raw read counters sampled beside it. The daemon
	// sampling interval equals the profile interval, so the rate's
	// denominator is exactly one interval.
	var sawTraffic bool
	for i, s := range live.Samples {
		var rawRead uint64
		for c := 0; c < nraw; c += 2 { // events alternate read, write
			rawRead += s.Values[c]
		}
		if rawRead > 0 {
			sawTraffic = true
		}
		want := float64(rawRead) / (float64(interval) / 1e9)
		got := float64(s.Values[nraw])
		if diff := got - want; diff < -2 || diff > 2 {
			t.Errorf("sample %d: derived read bw %v, raw-counter bw %v", i, got, want)
		}
	}
	if !sawTraffic {
		t.Fatal("live profile saw no read traffic; the comparison is vacuous")
	}

	// --- Leg 2: through pmproxy, on an identical twin testbed. ----------
	// Same seed, same phases, noise disabled: the twin's daemon serves
	// bit-identical samples, so the proxied profile must match the live
	// one exactly — derived column included.
	tb2, err := node.NewTestbed(arch.Summit(), 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer tb2.Close()
	_, proxyAddr, err := tb2.StartProxy()
	if err != nil {
		t.Fatal(err)
	}
	client2, err := pcp.Dial(proxyAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer client2.Close()
	rec2 := archive.NewRecorder(client2, mustArchive(t, client2))
	proxied, err := profile.Run(newLib(tb2, rec2), events, interval, phases(tb2))
	if err != nil {
		t.Fatal(err)
	}

	// --- Leg 3: replayed from the leg-1 recording. ----------------------
	clock3 := simtime.NewClock()
	replay := archive.NewReplay(rec.Archive(), clock3)
	lib3 := papi.NewLibrary(clock3)
	if err := lib3.Register(pcpcomp.New(replay)); err != nil {
		t.Fatal(err)
	}
	dcomp3, err := node.DerivedComponentOver(replay)
	if err != nil {
		t.Fatal(err)
	}
	if err := lib3.Register(dcomp3); err != nil {
		t.Fatal(err)
	}
	replayed, err := profile.Run(lib3, events, interval, phases(nil))
	if err != nil {
		t.Fatal(err)
	}

	for name, other := range map[string]*profile.Result{"proxied": proxied, "replayed": replayed} {
		if len(other.Samples) != len(live.Samples) {
			t.Fatalf("%s has %d samples, live has %d", name, len(other.Samples), len(live.Samples))
		}
		for i, ls := range live.Samples {
			os := other.Samples[i]
			if os.Time != ls.Time || os.Phase != ls.Phase {
				t.Fatalf("%s sample %d: (%v, %s) vs live (%v, %s)", name, i, os.Time, os.Phase, ls.Time, ls.Phase)
			}
			for c := range ls.Values {
				if os.Values[c] != ls.Values[c] {
					t.Errorf("%s sample %d event %s: %d, live %d", name, i, events[c], os.Values[c], ls.Values[c])
				}
			}
		}
	}
}

// mustArchive builds an archive with the upstream's full schema.
func mustArchive(t *testing.T, src archive.Fetcher) *archive.Archive {
	t.Helper()
	names, err := src.Names()
	if err != nil {
		t.Fatal(err)
	}
	a, err := archive.New(names, archive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return a
}
