// Package xrand provides a small, deterministic, splittable pseudo-random
// number generator used throughout the simulator.
//
// Every stochastic element of the simulation (counter-posting jitter, OS
// background noise, Monte Carlo sampling) draws from an xrand.Source seeded
// explicitly, so whole-system runs are reproducible bit-for-bit. The
// generator is SplitMix64 (Steele et al., OOPSLA 2014), which has a trivially
// correct split operation: deriving child generators from independent
// substreams of the parent.
package xrand

import "math"

// Source is a deterministic PRNG. The zero value is a valid generator
// seeded with 0.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source { return &Source{state: seed} }

const (
	gamma = 0x9E3779B97F4A7C15
	mul1  = 0xBF58476D1CE4E5B9
	mul2  = 0x94D049BB133111EB
)

// Uint64 returns the next 64-bit value in the stream.
func (s *Source) Uint64() uint64 {
	s.state += gamma
	z := s.state
	z = (z ^ (z >> 30)) * mul1
	z = (z ^ (z >> 27)) * mul2
	return z ^ (z >> 31)
}

// Split derives an independent child generator. The child's stream does not
// overlap the parent's continued stream.
func (s *Source) Split() *Source {
	return New(s.Uint64())
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n with non-positive n")
	}
	// Rejection sampling to avoid modulo bias.
	max := uint64(math.MaxUint64) - uint64(math.MaxUint64)%uint64(n)
	for {
		v := s.Uint64()
		if v < max {
			return int64(v % uint64(n))
		}
	}
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int { return int(s.Int63n(int64(n))) }

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// ExpFloat64 returns an exponential variate with mean 1.
func (s *Source) ExpFloat64() float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// LogNormal returns exp(mu + sigma*Z) for standard normal Z; handy for
// heavy-tailed noise magnitudes such as OS interference bursts.
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.NormFloat64())
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
