// Package kernels implements the paper's BLAS benchmark kernels twice
// over, deliberately:
//
//   - numerically, as straightforward Go translations of Listings 1–4
//     (reference, non-blocked triple loops — the paper uses reference
//     implementations because their memory behaviour is analyzable), with
//     batched variants that run one kernel per simulated core using real
//     goroutine parallelism; and
//   - symbolically, as loop-nest descriptors (internal/loopnest) that the
//     cache simulator executes and the analytic traffic engine reasons
//     about.
//
// Tests cross-check the two: the numeric kernels against naive
// references, and the descriptors' access counts against the closed-form
// expectations of internal/expect.
package kernels

import (
	"fmt"
	"sync"

	"papimc/internal/loopnest"
	"papimc/internal/trace"
)

// DOT returns the dot product of x and y. It panics on length mismatch.
func DOT(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("kernels: DOT length mismatch %d vs %d", len(x), len(y)))
	}
	sum := 0.0
	for i := range x {
		sum += x[i] * y[i]
	}
	return sum
}

// GEMV computes y = A·x for an m×n row-major matrix A (Listing 1).
func GEMV(a []float64, x, y []float64, m, n int) {
	checkLen("GEMV A", a, m*n)
	checkLen("GEMV x", x, n)
	checkLen("GEMV y", y, m)
	for i := 0; i < m; i++ {
		sum := 0.0
		row := a[i*n : (i+1)*n]
		for k := 0; k < n; k++ {
			sum += row[k] * x[k]
		}
		y[i] = sum
	}
}

// CappedGEMV computes the paper's modified GEMV (Equation 1):
// y_i = Σ_k A[i%p][k]·x[k], with A capped to p×n rows so that a very
// large output vector y can be produced without allocating an m×n
// matrix.
func CappedGEMV(a []float64, x, y []float64, m, n, p int) {
	if p <= 0 || p > m && m < p {
		// p = min(m, n) by construction; only positivity is essential.
		p = min(m, n)
	}
	checkLen("CappedGEMV A", a, p*n)
	checkLen("CappedGEMV x", x, n)
	checkLen("CappedGEMV y", y, m)
	for i := 0; i < m; i++ {
		sum := 0.0
		row := a[(i%p)*n : (i%p+1)*n]
		for k := 0; k < n; k++ {
			sum += row[k] * x[k]
		}
		y[i] = sum
	}
}

// GEMM computes C = A·B for n×n row-major matrices (Listing 3).
func GEMM(a, b, c []float64, n int) {
	checkLen("GEMM A", a, n*n)
	checkLen("GEMM B", b, n*n)
	checkLen("GEMM C", c, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for k := 0; k < n; k++ {
				sum += a[i*n+k] * b[k*n+j]
			}
			c[i*n+j] = sum
		}
	}
}

// BatchedGEMM runs numThreads independent GEMM operations concurrently
// (Listing 4): as[t]·bs[t] → cs[t]. There is no inter-thread
// communication, exactly as in the paper's batched kernels.
func BatchedGEMM(as, bs, cs [][]float64, n int) {
	batch(len(as), func(t int) { GEMM(as[t], bs[t], cs[t], n) })
}

// BatchedCappedGEMV runs numThreads independent capped GEMVs
// concurrently (Listing 2).
func BatchedCappedGEMV(as [][]float64, xs, ys [][]float64, m, n, p int) {
	batch(len(as), func(t int) { CappedGEMV(as[t], xs[t], ys[t], m, n, p) })
}

// batch runs f(0..n-1) on n goroutines and waits.
func batch(n int, f func(int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	for t := 0; t < n; t++ {
		go func(t int) {
			defer wg.Done()
			f(t)
		}(t)
	}
	wg.Wait()
}

func checkLen(what string, s []float64, want int) {
	if len(s) < want {
		panic(fmt.Sprintf("kernels: %s has %d elements, need %d", what, len(s), want))
	}
}

// --- loop-nest descriptors ---------------------------------------------

const elem = 8 // double precision

// GEMMNest describes the reference GEMM (Listing 3) over fresh regions
// in as: loads A[i][k] and B[k][j], store C[i][j].
func GEMMNest(as *trace.AddressSpace, label string, n int64) *loopnest.Nest {
	a := as.Alloc(label+".A", n*n*elem)
	b := as.Alloc(label+".B", n*n*elem)
	c := as.Alloc(label+".C", n*n*elem)
	return &loopnest.Nest{
		Name:  label,
		Loops: []loopnest.Loop{{Name: "i", Extent: n}, {Name: "j", Extent: n}, {Name: "k", Extent: n}},
		Refs: []loopnest.Ref{
			{Array: a, ElemSize: elem, Kind: trace.Load,
				Index: loopnest.Add(loopnest.Var(0, n), loopnest.Var(2, 1))},
			{Array: b, ElemSize: elem, Kind: trace.Load,
				Index: loopnest.Add(loopnest.Var(2, n), loopnest.Var(1, 1))},
			// C[i][j] is stored once per (i,j), after the k loop.
			{Array: c, ElemSize: elem, Kind: trace.Store, AtDepth: 2,
				Index: loopnest.Add(loopnest.Var(0, n), loopnest.Var(1, 1))},
		},
	}
}

// CappedGEMVNest describes the capped GEMV (Listing 2, one thread):
// loads A[i%p][k] and x[k], store y[i].
func CappedGEMVNest(as *trace.AddressSpace, label string, m, n, p int64) *loopnest.Nest {
	if p > m {
		p = m
	}
	a := as.Alloc(label+".A", p*n*elem)
	x := as.Alloc(label+".x", n*elem)
	y := as.Alloc(label+".y", m*elem)
	return &loopnest.Nest{
		Name:  label,
		Loops: []loopnest.Loop{{Name: "i", Extent: m}, {Name: "k", Extent: n}},
		Refs: []loopnest.Ref{
			{Array: a, ElemSize: elem, Kind: trace.Load,
				Index: loopnest.Add(loopnest.ModVar(0, p, n), loopnest.Var(1, 1))},
			{Array: x, ElemSize: elem, Kind: trace.Load,
				Index: loopnest.Var(1, 1)},
			// y[i] is stored once per completed dot product (after the
			// k loop): a sparse store stream that write-allocates.
			{Array: y, ElemSize: elem, Kind: trace.Store, AtDepth: 1,
				Index: loopnest.Var(0, 1)},
		},
	}
}

// Batched builds one descriptor per thread over a shared address space,
// so each simulated core works on disjoint arrays (no sharing, as the
// paper requires to keep per-core traffic analyzable).
func Batched(as *trace.AddressSpace, numThreads int, build func(t int, as *trace.AddressSpace) *loopnest.Nest) []*loopnest.Nest {
	out := make([]*loopnest.Nest, numThreads)
	for t := 0; t < numThreads; t++ {
		out[t] = build(t, as)
	}
	return out
}
