package cache

// streamClass classifies a detected access stream.
type streamClass uint8

const (
	// classUntrained: too few observations to classify.
	classUntrained streamClass = iota
	// classSequential: consecutive accesses touch the same or adjacent
	// cache blocks (|stride| <= sequentialMaxStride).
	classSequential
	// classStrided: a confirmed Stride-N stream whose consecutive
	// accesses land on non-adjacent cache blocks. Per the POWER9 ISA,
	// "hardware may detect Stride-N streams"; their presence disables
	// cache-bypassing stores.
	classStrided
)

const (
	// sequentialMaxStride: strides up to one full cache line still walk
	// blocks in order and count as sequential.
	sequentialMaxStride = 128
	// confirmCount observations with a stable stride confirm a stream.
	confirmCount = 3
	// stridedWindow is how many detector ticks a confirmed strided
	// stream stays "active" after its last access.
	stridedWindow = 4096
	// numStreamRegs is the number of hardware stream registers per core.
	numStreamRegs = 8
	// bypassMaxGap is the maximum inter-arrival gap (in core accesses)
	// at which a store stream still gathers into bypass buffers; sparser
	// streams write-allocate instead.
	bypassMaxGap = 64
)

type streamReg struct {
	last     int64 // last byte address observed
	stride   int64
	count    int // consecutive accesses matching stride
	lastTick uint64
	used     bool
}

func (r *streamReg) class() streamClass {
	if !r.used || r.count < confirmCount || r.stride == 0 {
		return classUntrained
	}
	if r.stride < 0 {
		if -r.stride <= sequentialMaxStride {
			return classSequential
		}
		return classStrided
	}
	if r.stride <= sequentialMaxStride {
		return classSequential
	}
	return classStrided
}

// detector models a per-core hardware stream prefetcher's detection logic.
// It only classifies streams; it does not generate prefetch traffic.
type detector struct {
	regs [numStreamRegs]streamReg
	tick uint64
}

// observe records an access and returns the classification of the stream
// the access belongs to, together with the stream's inter-arrival gap in
// detector ticks (how many core accesses elapsed since the stream was
// last touched). Sparse store streams — e.g. one result element written
// per dot product — cannot keep a gather buffer open and therefore do
// not bypass the cache, which is why the paper's GEMV expectation
// includes a read-for-ownership per element of y.
func (d *detector) observe(addr int64) (streamClass, uint64) {
	d.tick++
	// Pass 1: exact prediction match (addr == last + stride).
	for i := range d.regs {
		r := &d.regs[i]
		if r.used && r.stride != 0 && addr == r.last+r.stride {
			gap := d.tick - r.lastTick
			r.count++
			r.last = addr
			r.lastTick = d.tick
			return r.class(), gap
		}
	}
	// Pass 2: repeated address (e.g. re-reading the same element) keeps
	// the register warm without retraining.
	for i := range d.regs {
		r := &d.regs[i]
		if r.used && addr == r.last {
			gap := d.tick - r.lastTick
			r.lastTick = d.tick
			return r.class(), gap
		}
	}
	// Pass 3: retrain the register whose last address is closest, if the
	// new delta is plausible for a single stream. Real stream detectors
	// only track bounded strides; larger jumps allocate a fresh register
	// (and a stream of such jumps never confirms — its stores therefore
	// write-allocate, like the S1CF combined nest's output array).
	const trainWindow = int64(1) << 20
	best := -1
	var bestDelta int64
	for i := range d.regs {
		r := &d.regs[i]
		if !r.used {
			continue
		}
		delta := addr - r.last
		if delta < 0 {
			delta = -delta
		}
		if delta < trainWindow && (best < 0 || delta < bestDelta) {
			best = i
			bestDelta = delta
		}
	}
	if best >= 0 {
		r := &d.regs[best]
		gap := d.tick - r.lastTick
		newStride := addr - r.last
		if r.stride == newStride {
			r.count++
		} else {
			r.stride = newStride
			r.count = 1
		}
		r.last = addr
		r.lastTick = d.tick
		return r.class(), gap
	}
	// Pass 4: allocate the LRU register for a brand-new stream.
	victim := 0
	for i := range d.regs {
		if !d.regs[i].used {
			victim = i
			break
		}
		if d.regs[i].lastTick < d.regs[victim].lastTick {
			victim = i
		}
	}
	d.regs[victim] = streamReg{last: addr, used: true, lastTick: d.tick}
	return classUntrained, d.tick
}

// stridedActive reports whether any confirmed strided stream has been
// observed recently. While true, the core's sequential stores do not
// bypass the cache (the GEMM "read for C" effect).
func (d *detector) stridedActive() bool {
	for i := range d.regs {
		r := &d.regs[i]
		if r.class() == classStrided && d.tick-r.lastTick < stridedWindow {
			return true
		}
	}
	return false
}
