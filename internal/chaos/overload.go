// Overload chaos: the multi-tenant QoS property suite. Where chaos.go
// proves the stack survives a hostile transport, this file proves the
// proxy's admission layer keeps its promises when the offered load is
// hostile: three tenants (gold, silver, bronze) together offer twice
// the modelled upstream capacity, and the suite checks, per admission
// policy:
//
//   - Protection: under a protecting policy (token-bucket, priority)
//     the high-priority gold tenant's p99 latency stays within 2x of
//     its uncontended baseline p99, and gold is never shed or degraded.
//   - Conservation: for every tenant, exactly
//     Issued == Admitted + Shed + StaleServed, the harness's own
//     per-call classification matches the proxy's TenantStats, and the
//     aggregate Stats equal the per-tenant sums.
//   - Typed sheds: every rejected request fails with the typed
//     admission error (pmproxy.IsShed and pcp.ErrOverload) — never a
//     raw or untyped failure.
//   - Degradation: the degradable bronze tenant is served stale
//     answers instead of errors once its quota is spent.
//   - Control arm: under always-admit the same offered load drives
//     gold's p99 beyond the 2x bound — proving the harness can detect
//     the collapse the protecting policies prevent — and under
//     reject-all every request sheds and the upstream sees zero work.
//
// The upstream service is modelled, not measured: the driver is
// single-threaded under a simtime clock, and each admitted request
// passes through a FIFO queue with deterministic service time
// (overloadService, capacity OverloadCapacity req/s). Latency is
// queueing delay plus service — a pure function of the admitted
// arrival sequence, which itself derives entirely from
// (Options.Seed, trial index) via SplitMix64 substreams. The same
// seed reproduces the same report byte-for-byte at any worker count.
package chaos

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"papimc/internal/pcp"
	"papimc/internal/pmproxy"
	"papimc/internal/simtime"
	"papimc/internal/sweep"
	"papimc/internal/xrand"
)

// Overload testbed model: the upstream serves one request per
// overloadService, i.e. OverloadCapacity requests/sec. The three
// tenants together offer 2x that.
const (
	overloadService  = 500 * simtime.Microsecond
	OverloadCapacity = 2000.0 // modelled upstream capacity, req/s

	goldRate   = 800  // offered req/s, within every protecting quota
	silverRate = 1600 // offered req/s, far over quota
	bronzeRate = 1600 // offered req/s, degradable overflow

	baselineDur = 500 * simtime.Millisecond // gold alone: uncontended p99
	warmupDur   = 1 * simtime.Second        // all tenants, unmeasured
	measureDur  = 2 * simtime.Second        // all tenants, measured
)

// Overload tenant IDs. Distinct pmid sets per tenant keep their cache
// entries (and so the bronze stale path) independent.
const (
	TenantGold   uint32 = 1
	TenantSilver uint32 = 2
	TenantBronze uint32 = 3
)

// overloadStream salts the per-tenant arrival RNG substreams.
const overloadStream = 0x0B40AD

// OverloadPolicies are the admission policies the suite covers, in
// sweep order: the control arm first, then the protecting policies,
// then the drain policy.
func OverloadPolicies() []string {
	return []string{"always-admit", "token-bucket", "priority", "reject-all"}
}

// overloadAdmission is the tenant table for one policy. Quotas are
// sized against the model: gold's quota (and the priority drain)
// exceeds its offered 800/s so a protecting policy never sheds gold,
// while silver and bronze are capped far below their offered load.
// Bursts are small: a default burst (~1s of quota) would let silver
// and bronze dump hundreds of requests into the FIFO at warmup start,
// and that transient backlog — not steady-state contention — would be
// what gold's p99 measures.
func overloadAdmission(policy string) pmproxy.AdmissionConfig {
	cfg := pmproxy.AdmissionConfig{Policy: policy}
	switch policy {
	case "token-bucket":
		// Gold's bucket is deep enough that its jittered close-spaced
		// arrival runs (instantaneous rate up to 4x the mean) never
		// drain it: the protection assertion is that gold is NEVER
		// shed, so the quota must absorb the offered burstiness.
		cfg.Tenants = map[uint32]pmproxy.TenantConfig{
			TenantGold:   {Rate: 1200, Burst: 8},
			TenantSilver: {Rate: 60, Burst: 2},
			TenantBronze: {Rate: 30, Burst: 2, Degradable: true},
		}
	case "priority":
		cfg.Capacity = 1000
		cfg.Tenants = map[uint32]pmproxy.TenantConfig{
			TenantGold:   {Priority: 0},
			TenantSilver: {Priority: 1},
			TenantBronze: {Priority: 3, Degradable: true},
		}
	default:
		cfg.Tenants = map[uint32]pmproxy.TenantConfig{
			TenantBronze: {Degradable: true},
		}
	}
	return cfg
}

// OverloadOptions configures an overload sweep.
type OverloadOptions struct {
	// Seed is the base seed; trial i derives sweep.Seed(Seed, i).
	Seed uint64
	// Trials is how many independent seeded trials to run.
	Trials int
	// Policy is the admission policy under test; see OverloadPolicies.
	Policy string
	// Workers parallelizes trials (never calls within a trial).
	Workers int
	// Trial, when >= 0, runs only that single trial index — the replay
	// path for a failure line.
	Trial int
}

// TenantOutcome is one tenant's observed outcome in one trial. The
// counters are the harness's own per-call classification (cross-checked
// against the proxy's TenantStats); latency quantiles are over the
// measured phase's admitted requests in virtual nanoseconds.
type TenantOutcome struct {
	Name   string
	Tenant uint32

	Issued      int64
	Admitted    int64
	Shed        int64
	StaleServed int64

	Samples       int
	P50, P99, Max int64
}

// OverloadTrial is one trial's outcome: per-tenant accounting and
// latency, the gold baseline, the proxy stats, and any violations.
type OverloadTrial struct {
	Index  int
	Seed   uint64
	Policy string

	// BaselineP99 is gold's uncontended p99 (virtual ns), measured with
	// the other tenants silent. Zero under reject-all (nothing served).
	BaselineP99 int64

	Tenants    []TenantOutcome // gold, silver, bronze
	Proxy      pmproxy.Stats
	Violations []string
}

// OverloadReport is a full overload run's outcome.
type OverloadReport struct {
	Opts   OverloadOptions
	Trials []OverloadTrial
}

// Failed reports whether any trial violated an invariant.
func (r *OverloadReport) Failed() bool {
	for _, t := range r.Trials {
		if len(t.Violations) > 0 {
			return true
		}
	}
	return false
}

// String renders the deterministic report: byte-identical for the same
// options at any worker count.
func (r *OverloadReport) String() string {
	var b strings.Builder
	for _, t := range r.Trials {
		fmt.Fprintf(&b, "overload trial %02d policy=%s seed=%#016x baseline_p99=%dns\n",
			t.Index, t.Policy, t.Seed, t.BaselineP99)
		for _, o := range t.Tenants {
			fmt.Fprintf(&b, "  %-6s issued=%d admitted=%d shed=%d stale=%d samples=%d p50=%dns p99=%dns max=%dns",
				o.Name, o.Issued, o.Admitted, o.Shed, o.StaleServed,
				o.Samples, o.P50, o.P99, o.Max)
			if t.BaselineP99 > 0 && o.Samples > 0 {
				fmt.Fprintf(&b, " p99x=%.2f", float64(o.P99)/float64(t.BaselineP99))
			}
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "  proxy[fetch=%d up=%d coal=%d stale=%d shed=%d uerr=%d]\n",
			t.Proxy.ClientFetches, t.Proxy.UpstreamFetches, t.Proxy.CoalescedHits,
			t.Proxy.StaleServes, t.Proxy.Shed, t.Proxy.UpstreamErrors)
		for _, v := range t.Violations {
			fmt.Fprintf(&b, "  VIOLATION: %s\n", v)
		}
	}
	return b.String()
}

// OverloadReproLine is the one-command replay for a failing overload
// trial: same policy, same seed substream, same verdict.
func OverloadReproLine(o OverloadOptions, trial int) string {
	return fmt.Sprintf("go run ./cmd/chaos -overload -policy %s -seed %#x -trials %d -trial %d",
		o.Policy, o.Seed, maxInt(o.Trials, trial+1), trial)
}

// RunOverload executes the overload sweep. The error is only for
// harness failures (bad policy name, listen); invariant violations are
// reported in the OverloadReport.
func RunOverload(o OverloadOptions) (*OverloadReport, error) {
	if o.Trials <= 0 {
		o.Trials = 1
	}
	if o.Policy == "" {
		o.Policy = "token-bucket"
	}
	if _, err := pmproxy.NewPolicy(o.Policy, overloadAdmission(o.Policy)); err != nil {
		return nil, err
	}
	rep := &OverloadReport{Opts: o}
	if o.Trial >= 0 {
		t, err := runOverloadTrial(o, o.Trial)
		if err != nil {
			return nil, err
		}
		rep.Trials = []OverloadTrial{t}
		return rep, nil
	}
	trials, err := sweep.Map(o.Trials, o.Workers, func(i int) (OverloadTrial, error) {
		return runOverloadTrial(o, i)
	})
	if err != nil {
		return nil, err
	}
	rep.Trials = trials
	return rep, nil
}

// oTenant is one tenant's arrival stream and harness-side accounting.
type oTenant struct {
	name  string
	id    uint32
	pmids []uint32

	// Arrivals: spacing is uniform in [0.25, 1.75] of the mean
	// inter-arrival time, drawn from the tenant's own seed substream.
	// The jitter is wide on purpose: gold's minimum spacing dips below
	// the service time, so the uncontended baseline includes gold's own
	// burst-collision tail and the 2x protection bound compares the
	// contended tail against a real p99, not a constant.
	rng  *xrand.Source
	base int64 // mean inter-arrival, virtual ns
	next int64 // next arrival, virtual ns

	issued, admitted, shed, stale int64
	lats                          []int64
}

func (s *oTenant) scheduleNext() {
	s.next += s.base/4 + s.rng.Int63n(3*s.base/2+1)
}

// oDriver is one trial's single-threaded world: the shared virtual
// clock, the FIFO service model, and the proxy under test.
type oDriver struct {
	proxy     *pmproxy.Proxy
	clock     *simtime.Clock
	now       int64
	busyUntil int64 // FIFO: virtual time the modelled upstream goes idle
	violate   func(format string, args ...any)
}

// issue advances the clock to the tenant's arrival, issues one fetch,
// classifies the outcome against the proxy's own per-tenant counters,
// and — for admitted requests — runs the FIFO service model. sink
// receives the latency when the phase is measured.
func (d *oDriver) issue(s *oTenant, sink *[]int64) {
	d.clock.Advance(simtime.Duration(s.next - d.now))
	d.now = s.next
	before := d.proxy.TenantStatsFor(s.id)
	_, err := d.proxy.FetchTenant(s.id, s.pmids)
	after := d.proxy.TenantStatsFor(s.id)
	s.issued++
	if after.Issued != before.Issued+1 {
		d.violate("%s: proxy did not count the issued request", s.name)
	}
	switch {
	case err != nil:
		if !pmproxy.IsShed(err) || !errors.Is(err, pcp.ErrOverload) {
			d.violate("%s: rejected with untyped error: %v", s.name, err)
		}
		if after.Shed != before.Shed+1 {
			d.violate("%s: typed rejection not counted as shed", s.name)
		}
		s.shed++
	case after.StaleServed == before.StaleServed+1:
		s.stale++
	default:
		if after.Admitted != before.Admitted+1 {
			d.violate("%s: served request not counted as admitted", s.name)
		}
		s.admitted++
		start := d.now
		if d.busyUntil > start {
			start = d.busyUntil
		}
		d.busyUntil = start + int64(overloadService)
		if sink != nil {
			*sink = append(*sink, d.busyUntil-d.now)
		}
	}
}

// phase drives the merged tenant arrival streams until every next
// arrival is at or past end. Ties break by tenant order (gold first) —
// deterministic, like everything else here.
func (d *oDriver) phase(end int64, tenants []*oTenant, sinkFor func(*oTenant) *[]int64) {
	for {
		var s *oTenant
		for _, c := range tenants {
			if c.next < end && (s == nil || c.next < s.next) {
				s = c
			}
		}
		if s == nil {
			return
		}
		d.issue(s, sinkFor(s))
		s.scheduleNext()
	}
}

// pctile returns the q-th percentile (nearest-rank on the sorted
// sample) of lats, or 0 for an empty sample.
func pctile(lats []int64, q int) int64 {
	if len(lats) == 0 {
		return 0
	}
	s := append([]int64(nil), lats...)
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	return s[(len(s)-1)*q/100]
}

// runOverloadTrial drives one complete overload testbed
// single-threadedly; everything derives from the trial seed.
func runOverloadTrial(o OverloadOptions, idx int) (OverloadTrial, error) {
	seed := sweep.Seed(o.Seed, idx)
	t := OverloadTrial{Index: idx, Seed: seed, Policy: o.Policy}
	violate := func(format string, args ...any) {
		t.Violations = append(t.Violations, fmt.Sprintf(format, args...))
	}

	clock := simtime.NewClock()
	daemon, err := pcp.NewDaemon(clock, Interval, Metrics())
	if err != nil {
		return t, err
	}
	addr, err := daemon.Start("127.0.0.1:0")
	if err != nil {
		return t, err
	}
	defer daemon.Close()

	proxy := pmproxy.New(pmproxy.Config{
		Upstream: addr,
		Clock:    clock,
		// Interval 0: no coalescing window, so every admitted fetch is
		// an upstream round trip — exactly the work the quotas meter.
		Interval:  0,
		Timeout:   2 * time.Second,
		Admission: overloadAdmission(o.Policy),
		PoolSize:  1,
	})
	defer proxy.Close()

	newTenant := func(name string, id uint32, rate int64, pmids []uint32, start int64) *oTenant {
		s := &oTenant{
			name:  name,
			id:    id,
			pmids: pmids,
			rng:   xrand.New(mix(seed ^ (overloadStream + uint64(id)))),
			base:  int64(simtime.Second) / rate,
		}
		s.next = start + s.rng.Int63n(s.base+1)
		return s
	}
	gold := newTenant("gold", TenantGold, goldRate, []uint32{1, 2}, 0)
	silver := newTenant("silver", TenantSilver, silverRate, []uint32{3, 4}, int64(baselineDur))
	bronze := newTenant("bronze", TenantBronze, bronzeRate, []uint32{5, 6}, int64(baselineDur))
	all := []*oTenant{gold, silver, bronze}

	d := &oDriver{proxy: proxy, clock: clock, violate: violate}

	// Phase 1 — baseline: gold alone, establishing the uncontended p99
	// every protection bound is measured against.
	var baseline []int64
	d.phase(int64(baselineDur), []*oTenant{gold},
		func(*oTenant) *[]int64 { return &baseline })
	t.BaselineP99 = pctile(baseline, 99)

	// Phase 2 — warmup: all tenants at 2x capacity, unmeasured. Lets
	// the admission state (bucket levels, priority backlog) and the
	// FIFO's admission-transient backlog reach steady state.
	warmEnd := int64(baselineDur + warmupDur)
	d.phase(warmEnd, all, func(*oTenant) *[]int64 { return nil })

	// Phase 3 — measured: same 2x load, latencies recorded per tenant.
	d.phase(warmEnd+int64(measureDur), all,
		func(s *oTenant) *[]int64 { return &s.lats })

	// Per-tenant accounting: the harness's own classification must
	// match the proxy's counters, and conservation must hold exactly.
	var sumIssued, sumAdmitted, sumShed, sumStale int64
	for _, s := range all {
		ts := proxy.TenantStatsFor(s.id)
		if ts.Issued != s.issued || ts.Admitted != s.admitted ||
			ts.Shed != s.shed || ts.StaleServed != s.stale {
			violate("%s: proxy stats %+v != harness issued=%d admitted=%d shed=%d stale=%d",
				s.name, ts, s.issued, s.admitted, s.shed, s.stale)
		}
		if ts.Issued != ts.Admitted+ts.Shed+ts.StaleServed {
			violate("%s: conservation broken: issued %d != admitted %d + shed %d + stale %d",
				s.name, ts.Issued, ts.Admitted, ts.Shed, ts.StaleServed)
		}
		sumIssued += s.issued
		sumAdmitted += s.admitted
		sumShed += s.shed
		sumStale += s.stale
		t.Tenants = append(t.Tenants, TenantOutcome{
			Name: s.name, Tenant: s.id,
			Issued: s.issued, Admitted: s.admitted,
			Shed: s.shed, StaleServed: s.stale,
			Samples: len(s.lats),
			P50:     pctile(s.lats, 50),
			P99:     pctile(s.lats, 99),
			Max:     pctile(s.lats, 100),
		})
	}
	t.Proxy = proxy.Stats()
	st := t.Proxy

	// Aggregate accounting: the proxy-wide counters are exactly the
	// per-tenant sums, and with Interval 0 and a healthy upstream every
	// admitted request is one upstream fetch.
	if st.ClientFetches != sumIssued {
		violate("aggregate: ClientFetches=%d != issued sum %d", st.ClientFetches, sumIssued)
	}
	if st.Shed != sumShed {
		violate("aggregate: Shed=%d != per-tenant shed sum %d", st.Shed, sumShed)
	}
	if st.StaleServes != sumStale {
		violate("aggregate: StaleServes=%d != per-tenant stale sum %d", st.StaleServes, sumStale)
	}
	if st.UpstreamFetches != sumAdmitted {
		violate("aggregate: UpstreamFetches=%d != admitted sum %d", st.UpstreamFetches, sumAdmitted)
	}
	if st.UpstreamErrors != 0 {
		violate("aggregate: %d upstream errors with a healthy upstream", st.UpstreamErrors)
	}

	// Policy verdicts.
	g, s2, b := t.Tenants[0], t.Tenants[1], t.Tenants[2]
	switch o.Policy {
	case "reject-all":
		for _, o := range t.Tenants {
			if o.Shed != o.Issued {
				violate("reject-all: %s shed %d of %d issued", o.Name, o.Shed, o.Issued)
			}
		}
		if st.UpstreamFetches != 0 {
			violate("reject-all: %d requests reached the upstream", st.UpstreamFetches)
		}
	case "always-admit":
		if sumShed != 0 || sumStale != 0 {
			violate("always-admit: shed=%d stale=%d, want 0/0", sumShed, sumStale)
		}
		// The control arm: unprotected 2x overload must blow the bound,
		// or the protection assertions below prove nothing.
		if t.BaselineP99 <= 0 || g.P99 <= 2*t.BaselineP99 {
			violate("control arm failed to collapse: gold p99 %dns vs baseline %dns",
				g.P99, t.BaselineP99)
		}
	default: // protecting policies: token-bucket, priority
		if g.Shed != 0 || g.StaleServed != 0 {
			violate("%s: gold was degraded: shed=%d stale=%d", o.Policy, g.Shed, g.StaleServed)
		}
		if t.BaselineP99 <= 0 {
			violate("%s: no gold baseline", o.Policy)
		} else if g.P99 > 2*t.BaselineP99 {
			violate("%s: gold p99 %dns exceeds 2x baseline %dns (ratio %.2f)",
				o.Policy, g.P99, t.BaselineP99, float64(g.P99)/float64(t.BaselineP99))
		}
		if s2.Shed == 0 {
			violate("%s: silver at 2x quota was never shed", o.Policy)
		}
		if b.StaleServed == 0 {
			violate("%s: degradable bronze was never served stale", o.Policy)
		}
	}
	return t, nil
}
