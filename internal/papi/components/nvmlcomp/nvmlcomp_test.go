package nvmlcomp

import (
	"errors"
	"testing"

	"papimc/internal/gpu"
	"papimc/internal/papi"
	"papimc/internal/simtime"
)

func rig() (*Component, []*gpu.Device, *simtime.Clock) {
	clock := simtime.NewClock()
	devs := []*gpu.Device{gpu.New(0, nil), gpu.New(1, nil), gpu.New(2, nil)}
	return New(devs), devs, clock
}

func TestListAndDescribe(t *testing.T) {
	c, _, _ := rig()
	events, err := c.ListEvents()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("len = %d, want 3", len(events))
	}
	// Table II spelling.
	if events[0].Name != "Tesla_V100-SXM2-16GB:device_0:power" {
		t.Errorf("name = %q", events[0].Name)
	}
	if !events[0].Instant {
		t.Error("power must be an instant (level) event")
	}
	if events[0].Units != "mW" {
		t.Errorf("units = %q", events[0].Units)
	}
	if _, err := c.Describe("Tesla_V100-SXM2-16GB:device_9:power"); !errors.Is(err, papi.ErrNoEvent) {
		t.Errorf("err = %v", err)
	}
}

func TestPowerLevelsThroughEventSet(t *testing.T) {
	c, devs, clock := rig()
	lib := papi.NewLibrary(clock)
	if err := lib.Register(c); err != nil {
		t.Fatal(err)
	}
	es := lib.NewEventSet()
	if err := es.Add("nvml:::Tesla_V100-SXM2-16GB:device_1:power"); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	vals, err := es.Read()
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != gpu.IdleMilliwatts {
		t.Errorf("idle read = %d", vals[0])
	}
	// Start a kernel on device 1 and advance into it.
	devs[1].Execute(gpu.Flops/100, clock.Now())
	clock.Advance(simtime.Millisecond)
	vals, err = es.Read()
	if err != nil {
		t.Fatal(err)
	}
	// Instant semantics: the level, not a delta from Start.
	if vals[0] != gpu.BusyMilliwatts {
		t.Errorf("busy read = %d, want %d", vals[0], gpu.BusyMilliwatts)
	}
	if _, err := es.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownEvent(t *testing.T) {
	c, _, _ := rig()
	if _, err := c.NewCounters([]string{"bogus"}); !errors.Is(err, papi.ErrNoEvent) {
		t.Errorf("err = %v", err)
	}
}
