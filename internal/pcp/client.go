package pcp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Client is an unprivileged connection to a PMCD daemon. It is safe for
// concurrent use.
//
// Against a Version2 peer (negotiated at connection setup) the client
// pipelines: many requests stay outstanding on the one connection, a
// writer goroutine coalesces them into vectored tagged frames, and a
// demux reader completes them out of order, each under its own
// per-request deadline. Against a Version1 peer — or when pinned with
// DialMax(addr, Version1) — requests are serialized on the connection
// in lockstep, exactly as before the version bump.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	timeout time.Duration // per-round-trip wall deadline; 0 = none
	armed   bool          // lockstep: whether a conn deadline is set

	version uint32    // negotiated wire version (read-only after setup)
	pl      *pipeline // non-nil iff version >= Version2

	// Scratch buffers reused across lockstep round trips (guarded by
	// mu): the encoded request and the received payload. A round trip's
	// response is decoded before mu is released, so aliasing is safe.
	reqBuf  []byte
	recvBuf []byte

	names map[string]uint32 // lazily populated name table
}

// Dial connects, performs the protocol handshake, and negotiates the
// highest wire version both sides speak.
func Dial(addr string) (*Client, error) { return DialMax(addr, MaxVersion) }

// DialMax is Dial with a client-side cap on the negotiated wire
// version. DialMax(addr, Version1) pins the lockstep protocol — the
// behaviour of an old client — which is also what the chaos harness
// uses to keep its byte-exact fault accounting on the single-flight
// path.
func DialMax(addr string, maxVersion uint32) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pcp: dial %s: %w", addr, err)
	}
	return NewClientConnMax(conn, maxVersion)
}

// DialRaw connects using the given handshake magic; it exists so tests
// can exercise the daemon's rejection of unknown protocols.
func DialRaw(addr, magic string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pcp: dial %s: %w", addr, err)
	}
	return NewClientConnRaw(conn, magic)
}

// NewClientConn performs the protocol handshake over an
// already-established connection and returns a Client speaking on it.
// It is the injection point for transport wrappers (fault injection,
// in-process pipes): anything that satisfies net.Conn can carry the
// protocol. On handshake failure the connection is closed.
func NewClientConn(conn net.Conn) (*Client, error) {
	return NewClientConnMax(conn, MaxVersion)
}

// NewClientConnMax is NewClientConn with a cap on the negotiated wire
// version (see DialMax).
func NewClientConnMax(conn net.Conn, maxVersion uint32) (*Client, error) {
	return newClientConn(conn, Magic, maxVersion)
}

// NewClientConnRaw is NewClientConn with a caller-chosen handshake magic.
func NewClientConnRaw(conn net.Conn, magic string) (*Client, error) {
	return newClientConn(conn, magic, MaxVersion)
}

func newClientConn(conn net.Conn, magic string, maxVersion uint32) (*Client, error) {
	c := &Client{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn), version: Version1}
	if _, err := c.bw.WriteString(magic); err != nil {
		conn.Close()
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	echo := make([]byte, len(Magic))
	if _, err := io.ReadFull(c.br, echo); err != nil {
		conn.Close()
		return nil, fmt.Errorf("pcp: handshake: %w", err)
	}
	if string(echo) != Magic {
		conn.Close()
		return nil, fmt.Errorf("%w: bad handshake %q", ErrProtocol, echo)
	}
	if maxVersion > Version1 {
		if err := c.negotiate(maxVersion); err != nil {
			conn.Close()
			return nil, err
		}
	}
	if c.version >= Version2 {
		c.pl = newPipeline(conn, c.br, c.version >= Version3)
	}
	return c, nil
}

// DialTenant is Dial plus SetTenant: the connection identifies itself as
// the given tenant on every request (requires a Version3 peer for the
// tenant to travel in-band; against older peers it is silently absent,
// and the server accounts the connection as the default tenant).
func DialTenant(addr string, tenant uint32) (*Client, error) {
	c, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	c.SetTenant(tenant)
	return c, nil
}

// SetTenant sets the tenant stamped on every subsequent request's wide
// frame. It only has wire effect on a Version3 (or later) connection;
// on older connections it is a no-op. Safe for concurrent use; requests
// already enqueued keep the tenant they were issued with.
func (c *Client) SetTenant(tenant uint32) {
	if c.pl != nil && c.pl.wide {
		c.pl.tenant.Store(tenant)
	}
}

// Tenant returns the tenant currently stamped on outgoing requests
// (zero — the default tenant — on connections below Version3).
func (c *Client) Tenant() uint32 {
	if c.pl != nil && c.pl.wide {
		return c.pl.tenant.Load()
	}
	return 0
}

// negotiate runs the version exchange on a fresh lockstep connection.
// A Version1-only server does not know PDUVersionReq and answers with
// PDUError; that is the fallback signal — the connection is still in
// lockstep protocol state, so the client simply stays at Version1.
func (c *Client) negotiate(maxVersion uint32) error {
	if err := WritePDU(c.bw, PDUVersionReq, AppendVersion(c.reqBuf[:0], maxVersion)); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	typ, resp, err := ReadPDUInto(c.br, c.recvBuf)
	if err != nil {
		return err
	}
	c.recvBuf = resp
	switch typ {
	case PDUVersionResp:
		v, err := DecodeVersion(resp)
		if err != nil {
			return err
		}
		if v > maxVersion {
			return fmt.Errorf("%w: server negotiated version %d above our %d", ErrProtocol, v, maxVersion)
		}
		c.version = v
	case PDUError:
		// Old server: keep lockstep Version1.
		c.version = Version1
	default:
		return fmt.Errorf("%w: expected PDU %d, got %d", ErrProtocol, PDUVersionResp, typ)
	}
	return nil
}

// Version returns the negotiated wire protocol version.
func (c *Client) Version() uint32 { return c.version }

// Close closes the connection. On a pipelined client every request in
// flight fails with ErrClientClosed.
func (c *Client) Close() error {
	if c.pl != nil {
		return c.pl.close()
	}
	return c.conn.Close()
}

// SetTimeout bounds every subsequent round trip by a wall-clock
// deadline; zero disables it. On a lockstep connection a timed-out
// round trip leaves the connection in an undefined protocol state and
// it should be discarded. On a pipelined connection the deadline is
// per-request: a timeout fails only that request (with
// ErrRequestTimeout) and the connection stays usable — the late
// response is discarded by tag.
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	c.timeout = d
	c.mu.Unlock()
}

func (c *Client) timeoutNow() time.Duration {
	c.mu.Lock()
	d := c.timeout
	c.mu.Unlock()
	return d
}

// roundTripLocked sends one request PDU and decodes the reply, surfacing
// daemon-side error PDUs as Go errors. The caller must hold c.mu. The
// returned payload aliases the client's receive buffer and is only valid
// until the next round trip; callers decode it before releasing the lock.
func (c *Client) roundTripLocked(reqType uint8, payload []byte, wantType uint8) ([]byte, error) {
	resp, _, err := c.roundTripAnyLocked(reqType, payload, wantType, wantType)
	return resp, err
}

// roundTripAnyLocked is roundTripLocked accepting either of two response
// types, returning which one arrived.
//
// The connection deadline is managed edge-triggered: armed (one
// SetDeadline) per round trip while a timeout is configured, disarmed
// (one SetDeadline) only on the first round trip after the timeout is
// cleared, and never touched when no timeout has been set — zero
// deadline syscalls on the common path instead of the old
// arm-plus-defer-disarm pair per request.
func (c *Client) roundTripAnyLocked(reqType uint8, payload []byte, want1, want2 uint8) ([]byte, uint8, error) {
	if c.timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.timeout))
		c.armed = true
	} else if c.armed {
		c.conn.SetDeadline(time.Time{})
		c.armed = false
	}
	if err := WritePDU(c.bw, reqType, payload); err != nil {
		return nil, 0, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, 0, err
	}
	typ, resp, err := ReadPDUInto(c.br, c.recvBuf)
	if err != nil {
		return nil, 0, err
	}
	c.recvBuf = resp
	if typ == PDUError {
		msg, derr := DecodeError(resp)
		if derr != nil {
			return nil, 0, derr
		}
		return nil, 0, fmt.Errorf("pcp: daemon error: %s", msg)
	}
	if typ == PDUStatusError {
		se, derr := DecodeStatusError(resp)
		if derr != nil {
			return nil, 0, derr
		}
		return nil, 0, se
	}
	if typ != want1 && typ != want2 {
		return nil, 0, fmt.Errorf("%w: expected PDU %d, got %d", ErrProtocol, want1, typ)
	}
	return resp, typ, nil
}

// Names fetches the daemon's metric table.
func (c *Client) Names() ([]NameEntry, error) {
	var entries []NameEntry
	if c.pl != nil {
		call, err := c.pl.roundTrip(PDUNamesReq, nil, c.timeoutNow(), PDUNamesResp, PDUNamesResp)
		if err != nil {
			return nil, err
		}
		entries, err = DecodeNamesResp(call.resp)
		putCall(call)
		if err != nil {
			return nil, err
		}
	} else {
		c.mu.Lock()
		resp, err := c.roundTripLocked(PDUNamesReq, nil, PDUNamesResp)
		if err != nil {
			c.mu.Unlock()
			return nil, err
		}
		entries, err = DecodeNamesResp(resp)
		c.mu.Unlock()
		if err != nil {
			return nil, err
		}
	}
	names := make(map[string]uint32, len(entries))
	for _, e := range entries {
		names[e.Name] = e.PMID
	}
	c.mu.Lock()
	c.names = names
	c.mu.Unlock()
	return entries, nil
}

// Fetch retrieves values for the given PMIDs. Against a federated
// server it may return both a valid (partial) result and a
// *PartialError naming the nodes that contributed nothing; see
// FetchInto.
func (c *Client) Fetch(pmids []uint32) (FetchResult, error) {
	var res FetchResult
	if err := c.FetchInto(pmids, &res); err != nil {
		var pe *PartialError
		if errors.As(err, &pe) {
			return res, err
		}
		return FetchResult{}, err
	}
	return res, nil
}

// FetchInto is Fetch decoding into res, reusing res.Values' backing
// array. With a warm result it performs the whole round trip without
// allocating: the request is encoded into and the response received
// into reused buffers (client scratch in lockstep mode, a pooled call
// in pipelined mode).
//
// A PDUFetchPartialResp from a federated server decodes into a valid
// res AND a non-nil *PartialError return: the values for the missing
// nodes carry StatusNodeDown and the error names those nodes. Any
// other non-nil error leaves res untrustworthy.
func (c *Client) FetchInto(pmids []uint32, res *FetchResult) error {
	if c.pl != nil {
		enc := func(dst []byte) []byte { return AppendFetchReq(dst, pmids) }
		call, err := c.pl.roundTrip(PDUFetchReq, enc, c.timeoutNow(), PDUFetchResp, PDUFetchPartialResp)
		if err != nil {
			return err
		}
		err = decodeFetchFamily(call.respTyp, call.resp, res)
		putCall(call)
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reqBuf = AppendFetchReq(c.reqBuf[:0], pmids)
	return c.fetchRoundTripLocked(PDUFetchReq, c.reqBuf, res)
}

// FetchAll retrieves every metric the server exports, in PMID order,
// from one snapshot — the batch form of Fetch, one round trip for the
// whole namespace. Partial results surface as in FetchInto.
func (c *Client) FetchAll() (FetchResult, error) {
	var res FetchResult
	if err := c.FetchAllInto(&res); err != nil {
		var pe *PartialError
		if errors.As(err, &pe) {
			return res, err
		}
		return FetchResult{}, err
	}
	return res, nil
}

// FetchAllInto is FetchAll decoding into res, reusing its backing array.
func (c *Client) FetchAllInto(res *FetchResult) error {
	if c.pl != nil {
		call, err := c.pl.roundTrip(PDUFetchAllReq, nil, c.timeoutNow(), PDUFetchResp, PDUFetchPartialResp)
		if err != nil {
			return err
		}
		err = decodeFetchFamily(call.respTyp, call.resp, res)
		putCall(call)
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fetchRoundTripLocked(PDUFetchAllReq, nil, res)
}

// FetchBatch fetches multiple PMID sets in one round trip: the answer
// to sets[i] is results[i], and on a Version2 connection every set is
// served from one snapshot — the network analogue of a whole
// multi-component EventSet read. Partial federated answers return both
// valid results and one *PartialError covering the batch.
//
// On a Version1 (lockstep) connection the batch degrades to one round
// trip per set; the results keep their per-set timestamps but lose the
// single-snapshot guarantee.
func (c *Client) FetchBatch(sets [][]uint32) ([]FetchResult, error) {
	return c.FetchBatchInto(sets, nil)
}

// FetchBatchInto is FetchBatch decoding into results, reusing its outer
// array and each element's Values backing array.
func (c *Client) FetchBatchInto(sets [][]uint32, results []FetchResult) ([]FetchResult, error) {
	if c.pl != nil {
		enc := func(dst []byte) []byte { return AppendFetchBatchReq(dst, sets) }
		call, err := c.pl.roundTrip(PDUFetchBatchReq, enc, c.timeoutNow(), PDUFetchBatchResp, PDUFetchBatchResp)
		if err != nil {
			return nil, err
		}
		out, pe, err := DecodeFetchBatchRespInto(call.resp, results)
		putCall(call)
		if err != nil {
			return nil, err
		}
		if len(out) != len(sets) {
			return nil, fmt.Errorf("%w: batch answered %d sets, asked %d", ErrProtocol, len(out), len(sets))
		}
		if pe != nil {
			return out, pe
		}
		return out, nil
	}
	// Lockstep fallback: one round trip per set, partial errors merged.
	if cap(results) < len(sets) {
		grown := make([]FetchResult, len(sets))
		copy(grown, results[:cap(results)])
		results = grown
	}
	results = results[:len(sets)]
	var merged *PartialError
	for i, pmids := range sets {
		if err := c.FetchInto(pmids, &results[i]); err != nil {
			var pe *PartialError
			if !errors.As(err, &pe) {
				return nil, err
			}
			if merged == nil {
				merged = &PartialError{Cause: pe.Cause}
			}
			merged.Missing = mergeMissing(merged.Missing, pe.Missing)
		}
	}
	if merged != nil {
		return results, merged
	}
	return results, nil
}

// mergeMissing unions two sorted missing-node lists, preserving order.
func mergeMissing(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// decodeFetchFamily decodes a full or partial fetch response into res;
// a partial response returns the reconstructed *PartialError.
func decodeFetchFamily(typ uint8, payload []byte, res *FetchResult) error {
	if typ == PDUFetchPartialResp {
		pe, derr := DecodePartialResp(payload, res)
		if derr != nil {
			return derr
		}
		return pe
	}
	return DecodeFetchRespInto(payload, res)
}

// fetchRoundTripLocked performs one fetch-family round trip, accepting
// either a full or a partial fetch response. The caller must hold c.mu.
func (c *Client) fetchRoundTripLocked(reqType uint8, payload []byte, res *FetchResult) error {
	resp, typ, err := c.roundTripAnyLocked(reqType, payload, PDUFetchResp, PDUFetchPartialResp)
	if err != nil {
		return err
	}
	return decodeFetchFamily(typ, resp, res)
}

// Lookup resolves a metric name to its PMID, fetching the name table on
// first use. A miss against the cached table refreshes it once before
// failing, so metrics registered after the cache was populated (the
// daemon's namespace can grow) still resolve.
func (c *Client) Lookup(name string) (uint32, error) {
	c.mu.Lock()
	cached := c.names
	c.mu.Unlock()
	if cached != nil {
		if id, ok := cached[name]; ok {
			return id, nil
		}
	}
	if _, err := c.Names(); err != nil {
		return 0, err
	}
	c.mu.Lock()
	id, ok := c.names[name]
	c.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("pcp: unknown metric %q", name)
	}
	return id, nil
}

// FetchByName resolves and fetches the named metrics in order.
func (c *Client) FetchByName(names ...string) (FetchResult, error) {
	pmids := make([]uint32, len(names))
	for i, n := range names {
		id, err := c.Lookup(n)
		if err != nil {
			return FetchResult{}, err
		}
		pmids[i] = id
	}
	return c.Fetch(pmids)
}
