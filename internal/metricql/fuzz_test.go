package metricql

import (
	"testing"
)

// FuzzParseExpr asserts the parser is total: any input yields either an
// error or a valid AST, never a panic — and a successful parse's
// canonical String() form reparses to the same canonical form (the
// property the memoizer depends on).
func FuzzParseExpr(f *testing.F) {
	for _, seed := range []string{
		"sum(rate(nest.mba*.read_bytes))",
		"sum(rate(nest.mba*.read_bytes)) + sum(rate(nest.mba*.write_bytes))",
		"rate(nest.mba[0-7].read_bytes.cpu87)",
		"avg_over(rate(kernel.load), 500ms)",
		"max_over(a, 1.5s)",
		"(a + b) * -c / 2e3",
		"a*b - 2*3",
		"delta(perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value.cpu87)",
		"min(x) + max(y) - avg(z)",
		"-(-(-x))",
		"((((((((((a))))))))))",
		"1.",
		"1e",
		"1e+",
		"[",
		"a[",
		"a[]b",
		"\x00",
		"rate(rate(x))",
		"sum(,)",
		"100ms + 1",
		"a $ b",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		ex, err := Parse(src)
		if err != nil {
			if ex != nil {
				t.Fatalf("Parse(%q) returned both AST and error %v", src, err)
			}
			return
		}
		canon := ex.String()
		ex2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", canon, src, err)
		}
		if got := ex2.String(); got != canon {
			t.Fatalf("canonical form not a fixed point: %q -> %q -> %q", src, canon, got)
		}
	})
}
