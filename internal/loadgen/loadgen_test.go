package loadgen

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"papimc/internal/pcp"
	"papimc/internal/testutil"
)

// testDaemon builds a daemon with synthetic metrics via the shared
// testutil bed and returns it plus its TCP address.
func testDaemon(t *testing.T) (*pcp.Daemon, string) {
	t.Helper()
	return testutil.StartSyntheticDaemon(t, 8)
}

// TestSimSweepDeterministic: the whole simulated-time report — ops,
// throughput, every percentile — is identical across runs, including
// over a real TCP connection to a live daemon.
func TestSimSweepDeterministic(t *testing.T) {
	_, addr := testDaemon(t)
	opts := Options{
		Mode:  Closed,
		Ops:   300,
		PMIDs: []uint32{1, 2, 3},
		Sim:   &SimModel{Seed: 42, Base: 10 * time.Microsecond},
	}
	sweep := []int{1, 2, 4}
	a, err := Sweep(DialFactory(addr), sweep, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(DialFactory(addr), sweep, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("simulated-time sweep not deterministic:\n%s\nvs\n%s", Report(a), Report(b))
	}
	for i, r := range a {
		if r.Ops != int64(sweep[i]*opts.Ops) || r.Errors != 0 {
			t.Errorf("workers=%d: ops=%d errs=%d, want %d/0", r.Workers, r.Ops, r.Errors, sweep[i]*opts.Ops)
		}
		if r.P50 <= 0 || r.P999 < r.P99 || r.P99 < r.P95 || r.P95 < r.P50 || r.Max < r.P999 {
			t.Errorf("workers=%d: non-monotone percentiles %+v", r.Workers, r)
		}
	}
}

// TestSimOpenLoopQueueing: an open-loop arrival rate well above the
// service rate must surface queueing delay in the tail — p99 latency
// far beyond the pure service time — while a low rate must not.
func TestSimOpenLoopQueueing(t *testing.T) {
	_, addr := testDaemon(t)
	base := 10 * time.Microsecond // service rate ≈ 100k/s per worker
	run := func(rate float64) Result {
		r, err := Run(DialFactory(addr), Options{
			Mode:  Open,
			Rate:  rate,
			Ops:   400,
			PMIDs: []uint32{1},
			Sim:   &SimModel{Seed: 7, Base: base},
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	relaxed := run(20_000)     // 20% utilisation: no queueing
	overloaded := run(500_000) // 5x over capacity: queue grows without bound
	if relaxed.P99 > 20*base {
		t.Errorf("relaxed open loop shows queueing: p99 = %v", relaxed.P99)
	}
	if overloaded.P99 < 10*relaxed.P99 {
		t.Errorf("overload not visible in tail: p99 %v (relaxed %v)", overloaded.P99, relaxed.P99)
	}
}

// TestLiveClosedLoop drives real wall-clock load against the daemon over
// TCP — the smoke path CI exercises via cmd/pcploadgen.
func TestLiveClosedLoop(t *testing.T) {
	_, addr := testDaemon(t)
	r, err := Run(DialFactory(addr), Options{
		Mode:    Closed,
		Workers: 4,
		Ops:     50,
		PMIDs:   []uint32{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Ops != 200 || r.Errors != 0 {
		t.Errorf("ops=%d errs=%d, want 200/0", r.Ops, r.Errors)
	}
	if r.Throughput <= 0 || r.P50 <= 0 {
		t.Errorf("degenerate result: %+v", r)
	}
}

// TestSharedFactoryInProcess runs the generator against the daemon's
// in-process Fetch, no sockets involved.
func TestSharedFactoryInProcess(t *testing.T) {
	d, _ := testDaemon(t)
	f := SharedFactory(FetchFunc(func(pmids []uint32) (pcp.FetchResult, error) {
		return d.Fetch(pmids), nil
	}))
	r, err := Run(f, Options{Workers: 2, Ops: 100, Sim: &SimModel{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Ops != 200 {
		t.Errorf("ops = %d, want 200", r.Ops)
	}
}

func TestOptionValidation(t *testing.T) {
	f := SharedFactory(FetchFunc(func([]uint32) (pcp.FetchResult, error) {
		return pcp.FetchResult{}, nil
	}))
	if _, err := Run(f, Options{Mode: Open}); err == nil {
		t.Error("open loop without a rate should fail")
	}
	if _, err := Run(f, Options{Sim: &SimModel{}}); err == nil {
		t.Error("sim mode without Ops should fail")
	}
}

// TestRateValidationTyped: a zero or negative rate is rejected with the
// typed ErrRate — including a negative rate in closed loop, which used
// to ride along silently because closed loop never reads Rate.
func TestRateValidationTyped(t *testing.T) {
	f := SharedFactory(FetchFunc(func([]uint32) (pcp.FetchResult, error) {
		return pcp.FetchResult{}, nil
	}))
	for _, tc := range []struct {
		name string
		o    Options
	}{
		{"open zero rate", Options{Mode: Open, Ops: 10}},
		{"open negative rate", Options{Mode: Open, Rate: -5, Ops: 10}},
		{"closed negative rate", Options{Mode: Closed, Rate: -1, Ops: 10}},
	} {
		_, err := Run(f, tc.o)
		if !errors.Is(err, ErrRate) {
			t.Errorf("%s: err = %v, want ErrRate", tc.name, err)
		}
	}
	// A closed loop that never set Rate must keep working.
	if _, err := Run(f, Options{Mode: Closed, Ops: 5, Sim: &SimModel{Seed: 1}}); err != nil {
		t.Errorf("closed loop with zero rate rejected: %v", err)
	}
}

// TestWorkerSeedValidation: explicit per-worker seed substreams must
// match the worker count and be distinct, each failure mode with its own
// typed error; valid distinct seeds change the latency draws.
func TestWorkerSeedValidation(t *testing.T) {
	f := SharedFactory(FetchFunc(func([]uint32) (pcp.FetchResult, error) {
		return pcp.FetchResult{}, nil
	}))
	base := Options{Workers: 2, Ops: 50, Sim: &SimModel{Seed: 9}}

	o := base
	o.WorkerSeeds = []uint64{1}
	if _, err := Run(f, o); !errors.Is(err, ErrSeedCount) {
		t.Errorf("short seed slice: err = %v, want ErrSeedCount", err)
	}
	o = base
	o.WorkerSeeds = []uint64{7, 7}
	if _, err := Run(f, o); !errors.Is(err, ErrDuplicateSeed) {
		t.Errorf("duplicate seeds: err = %v, want ErrDuplicateSeed", err)
	}
	o = base
	o.WorkerSeeds = []uint64{3, 4}
	a, err := Run(f, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(f, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("explicit worker seeds not deterministic")
	}
	def, err := Run(f, base)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, def) {
		t.Error("explicit worker seeds did not change the draw streams")
	}
}

func TestReportShape(t *testing.T) {
	_, addr := testDaemon(t)
	rs, err := Sweep(DialFactory(addr), []int{1, 2}, Options{
		Ops: 50, Sim: &SimModel{Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := Report(rs)
	for _, want := range []string{"workers", "p99.9", "closed"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}
