package cache

// way is one cache way within a set.
type way struct {
	tag   int64 // block number (addr >> blockShift)
	valid bool
	dirty bool
	lru   uint64
}

// level is one set-associative cache array, indexed by 64-byte block
// number. The simulator tracks 64-byte blocks (the POWER9 memory
// transaction granularity) rather than full 128-byte lines, so traffic is
// naturally expressed in the same units as the paper's expectations.
type level struct {
	name    string
	sets    []way // len = numSets*assoc, set s occupies [s*assoc, (s+1)*assoc)
	numSets int
	assoc   int
	pow2    bool // numSets is a power of two
	mask    int64
	tick    uint64
}

func newLevel(name string, sizeBytes int64, assoc int) *level {
	numSets := int(sizeBytes / (BlockBytes * int64(assoc)))
	if numSets < 1 {
		numSets = 1
	}
	l := &level{
		name:    name,
		sets:    make([]way, numSets*assoc),
		numSets: numSets,
		assoc:   assoc,
	}
	if numSets&(numSets-1) == 0 {
		l.pow2 = true
		l.mask = int64(numSets - 1)
	}
	return l
}

func (l *level) setIndex(block int64) int {
	if l.pow2 {
		return int(block & l.mask)
	}
	return int(block % int64(l.numSets))
}

// lookup returns the way holding block, or nil. A hit refreshes LRU state.
func (l *level) lookup(block int64) *way {
	base := l.setIndex(block) * l.assoc
	for i := 0; i < l.assoc; i++ {
		w := &l.sets[base+i]
		if w.valid && w.tag == block {
			l.tick++
			w.lru = l.tick
			return w
		}
	}
	return nil
}

// evicted describes a line displaced by an insert.
type evicted struct {
	block int64
	dirty bool
	valid bool
}

// insert places block into the level (LRU replacement) and returns the
// displaced line, if any. If the block is already present it is updated
// in place and no eviction occurs.
func (l *level) insert(block int64, dirty bool) evicted {
	l.tick++
	base := l.setIndex(block) * l.assoc
	var victim *way
	for i := 0; i < l.assoc; i++ {
		w := &l.sets[base+i]
		if w.valid && w.tag == block {
			w.dirty = w.dirty || dirty
			w.lru = l.tick
			return evicted{}
		}
		if !w.valid {
			if victim == nil || victim.valid {
				victim = w
			}
			continue
		}
		if victim == nil || (victim.valid && w.lru < victim.lru) {
			victim = w
		}
	}
	ev := evicted{}
	if victim.valid {
		ev = evicted{block: victim.tag, dirty: victim.dirty, valid: true}
	}
	victim.tag = block
	victim.valid = true
	victim.dirty = dirty
	victim.lru = l.tick
	return ev
}

// invalidate removes block from the level, returning whether it was
// present and dirty.
func (l *level) invalidate(block int64) (present, dirty bool) {
	base := l.setIndex(block) * l.assoc
	for i := 0; i < l.assoc; i++ {
		w := &l.sets[base+i]
		if w.valid && w.tag == block {
			w.valid = false
			return true, w.dirty
		}
	}
	return false, false
}

// forEachValid visits every valid line. The visitor may not mutate the
// level; use drain for destructive walks.
func (l *level) forEachValid(f func(block int64, dirty bool)) {
	for i := range l.sets {
		if l.sets[i].valid {
			f(l.sets[i].tag, l.sets[i].dirty)
		}
	}
}

// drain invalidates every line, invoking f for each dirty one.
func (l *level) drain(f func(block int64)) {
	for i := range l.sets {
		if l.sets[i].valid {
			if l.sets[i].dirty {
				f(l.sets[i].tag)
			}
			l.sets[i].valid = false
			l.sets[i].dirty = false
		}
	}
}

// countValid returns the number of valid lines.
func (l *level) countValid() int {
	n := 0
	for i := range l.sets {
		if l.sets[i].valid {
			n++
		}
	}
	return n
}
