// Package figures regenerates every table and figure of the paper's
// evaluation from the simulated testbed: Table I/II (event inventories),
// Figs. 2–5 (BLAS traffic accuracy), Figs. 6–9 (re-sort traffic), Fig. 10
// (large-job bandwidth) and Figs. 11–12 (multi-component profiles). The
// cmd/figures tool and the root benchmark suite are thin wrappers over
// this package.
package figures

import (
	"fmt"
	"sort"

	"papimc/internal/arch"
	"papimc/internal/harness"
	"papimc/internal/ib"
	"papimc/internal/node"
	"papimc/internal/profile"
	"papimc/internal/report"
	"papimc/internal/simtime"
)

// Result is a regenerated figure or table.
type Result struct {
	ID    string
	Title string
	Table *report.Table
	Chart *report.Chart // nil for pure tables
}

// Options scales the regeneration effort.
type Options struct {
	// Quick shrinks sweeps and run counts for fast benchmarks; the
	// default reproduces the paper-scale parameter ranges.
	Quick bool
	// Seed drives all noise; fixed for reproducibility.
	Seed uint64
	// Workers bounds each sweep's parallel executor; <1 means one worker
	// per CPU. Figure output is byte-identical for every worker count
	// because each sweep task runs on its own deterministically seeded
	// testbed.
	Workers int
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 20230515 // IPDPS 2023 vintage
	}
	return o.Seed
}

// gemmSizes returns the Fig. 2–4 problem-size sweep.
func (o Options) gemmSizes() []int64 {
	if o.Quick {
		return []int64{128, 256, 512, 1024, 2048}
	}
	return []int64{128, 192, 256, 384, 512, 640, 768, 896, 1024, 1280, 1536, 2048, 3072, 4096}
}

// gemvSizes returns the Fig. 5 output-size sweep.
func (o Options) gemvSizes() []int64 {
	if o.Quick {
		return []int64{256, 1280, 4096, 16384}
	}
	return []int64{256, 384, 512, 768, 1024, 1280, 2048, 4096, 8192, 16384, 32768, 65536}
}

// resortSizes returns the Figs. 6–9 sweep.
func (o Options) resortSizes() []int64 {
	if o.Quick {
		return []int64{256, 724, 1344}
	}
	return []int64{128, 256, 384, 512, 724, 896, 1120, 1344, 1792, 2016}
}

func (o Options) resortRuns() int {
	if o.Quick {
		return 5
	}
	return 50 // as in the paper
}

// --- Tables I and II -----------------------------------------------------

// TableI regenerates the architectures-and-events table.
func TableI(o Options) (*Result, error) {
	t := &report.Table{Headers: []string{"System", "Arch", "Performance Event (first/last of 16)"}}
	for _, m := range []arch.Machine{arch.Summit(), arch.Tellico()} {
		tb, err := node.NewTestbed(m, 1, node.Options{Seed: o.seed(), DisableNoise: true})
		if err != nil {
			return nil, err
		}
		route := node.ViaPCP
		if m.PrivilegedNestAccess {
			route = node.Direct
		}
		names := tb.NestEventNames(route)
		t.AddRow(m.Name, m.Arch, names[0])
		t.AddRow("", "", names[len(names)-1])
		tb.Close()
	}
	return &Result{ID: "tableI", Title: "Table I: Architectures and Performance Events", Table: t}, nil
}

// TableII regenerates the supplemental-events table.
func TableII(o Options) (*Result, error) {
	tb, err := node.NewTestbed(arch.Summit(), 1, node.Options{Seed: o.seed(), DisableNoise: true})
	if err != nil {
		return nil, err
	}
	defer tb.Close()
	lib, _, err := tb.NewLibrary()
	if err != nil {
		return nil, err
	}
	t := &report.Table{Headers: []string{"Hardware", "PAPI Component", "Performance Event"}}
	events, err := lib.AllEvents()
	if err != nil {
		return nil, err
	}
	for _, e := range events {
		comp, _ := splitPrefix(e.Name)
		switch comp {
		case "nvml":
			if e.Name == "nvml:::Tesla_V100-SXM2-16GB:device_0:power" {
				t.AddRow("NVIDIA Tesla V100 GPU", "nvml", e.Name)
			}
		case "infiniband":
			t.AddRow("Mellanox ConnectX-5 Ex", "infiniband", e.Name)
		}
	}
	return &Result{ID: "tableII", Title: "Table II: Supplemental Performance Events", Table: t}, nil
}

func splitPrefix(full string) (string, string) {
	for i := 0; i+3 <= len(full); i++ {
		if full[i:i+3] == ":::" {
			return full[:i], full[i+3:]
		}
	}
	return "", full
}

// --- Figs. 2–4: GEMM accuracy ---------------------------------------------

func pointsResult(id, title, sizeLabel string, pts []harness.Point) *Result {
	t := &report.Table{Headers: []string{
		sizeLabel, "reps",
		"measured read (B)", "measured write (B)",
		"expected read (B)", "expected write (B)",
		"read err", "write err",
	}}
	chart := &report.Chart{
		Title: title, XLabel: sizeLabel, YLabel: "bytes", LogX: true, LogY: true,
	}
	var xs, mr, mw, er, ew []float64
	for _, p := range pts {
		t.AddRow(p.Size, p.Reps,
			p.MeasuredReadBytes, p.MeasuredWriteBytes,
			p.ExpectedReadBytes, p.ExpectedWriteBytes,
			p.ReadError(), p.WriteError())
		xs = append(xs, float64(p.Size))
		mr = append(mr, p.MeasuredReadBytes)
		mw = append(mw, p.MeasuredWriteBytes)
		er = append(er, float64(p.ExpectedReadBytes))
		ew = append(ew, float64(p.ExpectedWriteBytes))
	}
	chart.Add(report.Series{Name: "measured reads", X: xs, Y: mr})
	chart.Add(report.Series{Name: "measured writes", X: xs, Y: mw})
	chart.Add(report.Series{Name: "expected reads", X: xs, Y: er})
	chart.Add(report.Series{Name: "expected writes", X: xs, Y: ew})
	return &Result{ID: id, Title: title, Table: t, Chart: chart}
}

// gemmFig regenerates one of the Figs. 2–4 panels.
func gemmFig(o Options, id, title string, m arch.Machine, batched bool, route node.Route, reps harness.RepsPolicy) (*Result, error) {
	pts, err := harness.GEMMSweep(harness.GEMMConfig{
		Machine: m,
		Batched: batched,
		Route:   route,
		Reps:    reps,
		Sizes:   o.gemmSizes(),
		Options: node.Options{Seed: o.seed()},
		Workers: o.Workers,
	})
	if err != nil {
		return nil, err
	}
	return pointsResult(id, title, "N", pts), nil
}

// Fig2a: serial GEMM, 1 repetition, PCP on Summit.
func Fig2a(o Options) (*Result, error) {
	return gemmFig(o, "fig2a", "Fig. 2a: serial GEMM, 1 rep, PCP (Summit)",
		arch.Summit(), false, node.ViaPCP, harness.SingleRep)
}

// Fig2b: serial GEMM, 1 repetition, perf_uncore on Tellico.
func Fig2b(o Options) (*Result, error) {
	return gemmFig(o, "fig2b", "Fig. 2b: serial GEMM, 1 rep, perf_uncore (Tellico)",
		arch.Tellico(), false, node.Direct, harness.SingleRep)
}

// Fig3a: serial GEMM with Eq. 5's adaptive repetitions, PCP.
func Fig3a(o Options) (*Result, error) {
	return gemmFig(o, "fig3a", "Fig. 3a: serial GEMM, adaptive reps (Eq. 5), PCP (Summit)",
		arch.Summit(), false, node.ViaPCP, harness.AdaptiveReps)
}

// Fig3b: batched GEMM (one per core), adaptive repetitions, PCP.
func Fig3b(o Options) (*Result, error) {
	return gemmFig(o, "fig3b", "Fig. 3b: batched GEMM, adaptive reps, PCP (Summit)",
		arch.Summit(), true, node.ViaPCP, harness.AdaptiveReps)
}

// Fig4a: Fig. 3a's experiment via perf_uncore on Tellico.
func Fig4a(o Options) (*Result, error) {
	return gemmFig(o, "fig4a", "Fig. 4a: serial GEMM, adaptive reps, perf_uncore (Tellico)",
		arch.Tellico(), false, node.Direct, harness.AdaptiveReps)
}

// Fig4b: Fig. 3b's experiment via perf_uncore on Tellico.
func Fig4b(o Options) (*Result, error) {
	return gemmFig(o, "fig4b", "Fig. 4b: batched GEMM, adaptive reps, perf_uncore (Tellico)",
		arch.Tellico(), true, node.Direct, harness.AdaptiveReps)
}

// --- Fig. 5: capped GEMV ---------------------------------------------------

func gemvFig(o Options, id, title string, m arch.Machine, route node.Route) (*Result, error) {
	pts, err := harness.CappedGEMVSweep(harness.GEMVConfig{
		Machine: m,
		Route:   route,
		Reps:    harness.AdaptiveReps,
		Sizes:   o.gemvSizes(),
		Options: node.Options{Seed: o.seed()},
		Workers: o.Workers,
	})
	if err != nil {
		return nil, err
	}
	return pointsResult(id, title, "M", pts), nil
}

// Fig5a: batched capped GEMV via PCP on Summit.
func Fig5a(o Options) (*Result, error) {
	return gemvFig(o, "fig5a", "Fig. 5a: batched capped GEMV, PCP (Summit)", arch.Summit(), node.ViaPCP)
}

// Fig5b: batched capped GEMV via perf_uncore on Tellico.
func Fig5b(o Options) (*Result, error) {
	return gemvFig(o, "fig5b", "Fig. 5b: batched capped GEMV, perf_uncore (Tellico)", arch.Tellico(), node.Direct)
}

// --- Figs. 6–9: FFT re-sorts -------------------------------------------------

func resortFig(o Options, id, title string, routine harness.ResortRoutine, prefetch bool) (*Result, error) {
	pts, err := harness.ResortSweep(harness.ResortConfig{
		Machine:  arch.Summit(),
		Routine:  routine,
		Prefetch: prefetch,
		GridR:    2, GridC: 4,
		Route:   node.ViaPCP,
		Sizes:   o.resortSizes(),
		Runs:    o.resortRuns(),
		Options: node.Options{Seed: o.seed()},
		Workers: o.Workers,
	})
	if err != nil {
		return nil, err
	}
	t := &report.Table{Headers: []string{
		"N", "runs",
		"read min (B)", "read max (B)", "write min (B)", "write max (B)",
		"expected read (B)", "expected write (B)",
	}}
	chart := &report.Chart{Title: title, XLabel: "N", YLabel: "bytes", LogX: true, LogY: true}
	var xs, rmax, wmax, er, ew []float64
	for _, p := range pts {
		t.AddRow(p.N, p.Runs,
			p.MinReadBytes, p.MaxReadBytes, p.MinWriteBytes, p.MaxWriteBytes,
			p.ExpectedReadBytes, p.ExpectedWriteBytes)
		xs = append(xs, float64(p.N))
		rmax = append(rmax, p.MaxReadBytes)
		wmax = append(wmax, p.MaxWriteBytes)
		er = append(er, float64(p.ExpectedReadBytes))
		ew = append(ew, float64(p.ExpectedWriteBytes))
	}
	chart.Add(report.Series{Name: "measured reads (max)", X: xs, Y: rmax})
	chart.Add(report.Series{Name: "measured writes (max)", X: xs, Y: wmax})
	chart.Add(report.Series{Name: "expected reads", X: xs, Y: er})
	chart.Add(report.Series{Name: "expected writes", X: xs, Y: ew})
	return &Result{ID: id, Title: title, Table: t, Chart: chart}, nil
}

// Fig6a/b: S1CF loop nest 1 without and with -fprefetch-loop-arrays.
func Fig6a(o Options) (*Result, error) {
	return resortFig(o, "fig6a", "Fig. 6a: S1CF loop nest 1 (no prefetch)", harness.S1CFLoopNest1, false)
}

// Fig6b is the prefetch variant of Fig6a.
func Fig6b(o Options) (*Result, error) {
	return resortFig(o, "fig6b", "Fig. 6b: S1CF loop nest 1 (-fprefetch-loop-arrays)", harness.S1CFLoopNest1, true)
}

// Fig7a/b: S1CF loop nest 2.
func Fig7a(o Options) (*Result, error) {
	return resortFig(o, "fig7a", "Fig. 7a: S1CF loop nest 2 (no prefetch)", harness.S1CFLoopNest2, false)
}

// Fig7b is the prefetch variant of Fig7a.
func Fig7b(o Options) (*Result, error) {
	return resortFig(o, "fig7b", "Fig. 7b: S1CF loop nest 2 (-fprefetch-loop-arrays)", harness.S1CFLoopNest2, true)
}

// Fig8: the fused S1CF nest.
func Fig8(o Options) (*Result, error) {
	return resortFig(o, "fig8", "Fig. 8: S1CF combined loop nest", harness.S1CFCombined, false)
}

// Fig9a/b: S2CF.
func Fig9a(o Options) (*Result, error) {
	return resortFig(o, "fig9a", "Fig. 9a: S2CF (no prefetch)", harness.S2CFRoutine, false)
}

// Fig9b is the prefetch variant of Fig9a.
func Fig9b(o Options) (*Result, error) {
	return resortFig(o, "fig9b", "Fig. 9b: S2CF (-fprefetch-loop-arrays)", harness.S2CFRoutine, true)
}

// Fig10 regenerates the large-job (16 nodes, 4×8 grid) comparison.
func Fig10(o Options) (*Result, error) {
	rows := harness.Fig10(arch.Summit(), []int64{1344, 2016})
	t := &report.Table{Headers: []string{
		"routine", "N", "read (B)", "write (B)", "read:write", "bandwidth (GB/s)",
	}}
	for _, r := range rows {
		t.AddRow(r.Routine, r.N, r.ReadBytes, r.WriteBytes, r.ReadWriteRatio, r.BandwidthGBs)
	}
	return &Result{ID: "fig10", Title: "Fig. 10: S1CF vs S2CF, 16 nodes, 4x8 grid", Table: t}, nil
}

// --- Figs. 11–12: multi-component profiles ---------------------------------

func profileResult(id, title string, tb *node.Testbed, phases []profile.Phase, interval simtime.Duration) (*Result, error) {
	lib, _, err := tb.NewLibrary()
	if err != nil {
		return nil, err
	}
	events := profile.FFTProfileEvents(tb)
	res, err := profile.Run(lib, events, interval, phases)
	if err != nil {
		return nil, err
	}
	nCh := tb.Machine.Socket.MBAChannels
	t := &report.Table{Headers: []string{
		"t (ms)", "phase", "mem read (MB/s)", "mem write (MB/s)", "GPU power (W)", "IB recv (MB/s)",
	}}
	dt := interval.Seconds()
	for _, s := range res.Samples {
		var reads, writes uint64
		for i := 0; i < 2*nCh; i += 2 {
			reads += s.Values[i]
			writes += s.Values[i+1]
		}
		ibWords := s.Values[2*nCh+1]
		t.AddRow(
			float64(s.Time)/1e6, s.Phase,
			float64(reads)/dt/1e6,
			float64(writes)/dt/1e6,
			float64(s.Values[2*nCh])/1000,
			float64(ibWords*ib.WordBytes)/dt/1e6,
		)
	}
	return &Result{ID: id, Title: title, Table: t}, nil
}

// Fig11 regenerates the GPU 3D-FFT rank profile (32 nodes, 8×8 grid).
func Fig11(o Options) (*Result, error) {
	numNodes := 32
	if o.Quick {
		numNodes = 2
	}
	tb, err := node.NewTestbed(arch.Summit(), numNodes, node.Options{Seed: o.seed()})
	if err != nil {
		return nil, err
	}
	defer tb.Close()
	phases, err := profile.FFTPhases(tb, profile.FFTAppConfig{N: 2016, GridR: 8, GridC: 8})
	if err != nil {
		return nil, err
	}
	return profileResult("fig11", "Fig. 11: performance profile of a single 3D-FFT rank", tb, phases, 10*simtime.Millisecond)
}

// Fig12 regenerates the QMCPACK rank profile.
func Fig12(o Options) (*Result, error) {
	tb, err := node.NewTestbed(arch.Summit(), 2, node.Options{Seed: o.seed()})
	if err != nil {
		return nil, err
	}
	defer tb.Close()
	dur := 500 * simtime.Millisecond
	if o.Quick {
		dur = 100 * simtime.Millisecond
	}
	phases, err := profile.QMCPhases(tb, profile.QMCAppConfig{Walkers: 4096, PhaseDuration: dur})
	if err != nil {
		return nil, err
	}
	return profileResult("fig12", "Fig. 12: performance profile of a single QMCPACK rank", tb, phases, 10*simtime.Millisecond)
}

// Generator produces one figure.
type Generator struct {
	ID  string
	Gen func(Options) (*Result, error)
}

// All returns every table and figure generator, in paper order.
func All() []Generator {
	return []Generator{
		{"tableI", TableI},
		{"fig2a", Fig2a}, {"fig2b", Fig2b},
		{"fig3a", Fig3a}, {"fig3b", Fig3b},
		{"fig4a", Fig4a}, {"fig4b", Fig4b},
		{"fig5a", Fig5a}, {"fig5b", Fig5b},
		{"fig6a", Fig6a}, {"fig6b", Fig6b},
		{"fig7a", Fig7a}, {"fig7b", Fig7b},
		{"fig8", Fig8},
		{"fig9a", Fig9a}, {"fig9b", Fig9b},
		{"fig10", Fig10},
		{"fig11", Fig11}, {"fig12", Fig12},
		{"tableII", TableII},
	}
}

// ByID returns the generator with the given ID.
func ByID(id string) (Generator, error) {
	for _, g := range All() {
		if g.ID == id {
			return g, nil
		}
	}
	ids := make([]string, 0, len(All()))
	for _, g := range All() {
		ids = append(ids, g.ID)
	}
	sort.Strings(ids)
	return Generator{}, fmt.Errorf("figures: unknown id %q (have %v)", id, ids)
}
