package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"papimc/internal/arch"
	"papimc/internal/loadgen"
	"papimc/internal/node"
	"papimc/internal/pcp"
)

// wireGOMAXPROCS is the fixed parallelism the wire record is measured
// at, so the numbers are comparable across hosts with different core
// counts (on a single-core container the 8 Ps time-slice; the win being
// measured is syscall and round-trip amortization, not parallelism).
const wireGOMAXPROCS = 8

// WireRun is one open-loop run against the proxied tier.
type WireRun struct {
	Config     string  `json:"config"` // "lockstep" | "pipelined"
	Workers    int     `json:"workers"`
	Conns      int     `json:"conns,omitempty"` // shared pipelined connections
	Batch      int     `json:"batch"`
	Offered    float64 `json:"offered_sets_per_sec"`
	Throughput float64 `json:"throughput_sets_per_sec"`
	Ops        int64   `json:"ops"`
	Errors     int64   `json:"errors"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
}

// wireMain records the wire-path overhaul's headline number
// (BENCH_7.json): proxied fetch throughput, lockstep Version1
// (connection-per-worker, one request in flight each) versus the
// pipelined Version2 path (tagged PDUs, shared connections, batched
// sets), plus a latency pair at equal offered load showing the
// pipelined path's tail is no worse where the lockstep tier can still
// keep up.
func wireMain(out string, duration time.Duration) {
	prev := runtime.GOMAXPROCS(wireGOMAXPROCS)
	defer runtime.GOMAXPROCS(prev)

	tb, err := node.NewTestbed(arch.Summit(), 1, node.Options{DisableNoise: true})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer tb.Close()
	_, addr, err := tb.StartProxy()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	pmids := []uint32{1, 2, 3, 4, 5, 6, 7, 8}
	lockstep := func() loadgen.Factory {
		return func() (loadgen.Fetcher, func() error, error) {
			c, err := pcp.DialMax(addr, pcp.Version1)
			if err != nil {
				return nil, nil, err
			}
			return c, c.Close, nil
		}
	}

	run := func(config string, f loadgen.Factory, workers, conns, batch int, rate float64) WireRun {
		res, err := loadgen.Run(f, loadgen.Options{
			Mode:     loadgen.Open,
			Workers:  workers,
			PMIDs:    pmids,
			Duration: duration,
			Rate:     rate,
			Batch:    batch,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		w := WireRun{
			Config: config, Workers: workers, Conns: conns, Batch: batch,
			Offered: rate, Throughput: res.Throughput,
			Ops: res.Ops, Errors: res.Errors,
			P50Ms: float64(res.P50.Microseconds()) / 1e3,
			P99Ms: float64(res.P99.Microseconds()) / 1e3,
		}
		fmt.Printf("%-9s workers=%-3d conns=%-2d batch=%-3d offered=%9.0f/s  throughput=%9.0f/s  p50=%7.2fms p99=%7.2fms errs=%d\n",
			config, workers, conns, batch, rate, w.Throughput, w.P50Ms, w.P99Ms, w.Errors)
		return w
	}

	// median3 reruns a saturation measurement three times and keeps the
	// median-throughput run: capacity numbers on a shared host jitter by
	// 2x run to run, and a single sample would make the recorded speedup
	// a coin flip.
	median3 := func(f func() WireRun) WireRun {
		runs := []WireRun{f(), f(), f()}
		sort.Slice(runs, func(i, j int) bool { return runs[i].Throughput < runs[j].Throughput })
		return runs[1]
	}

	// Saturation: offered load far past capacity, so the measured
	// throughput is what the tier sustains. Latency here is backlog, not
	// service time — the latency comparison is the equal-load pair below.
	fmt.Printf("wire-path saturation (GOMAXPROCS=%d, open loop, %v per run, median of 3)\n", wireGOMAXPROCS, duration)
	satLock := median3(func() WireRun { return run("lockstep", lockstep(), 16, 0, 1, 4e6) })
	satPipe := median3(func() WireRun {
		return run("pipelined", loadgen.PipelinedFactory(addr, 4), 256, 4, 256, 8e6)
	})
	speedup := 0.0
	if satLock.Throughput > 0 {
		speedup = round2(satPipe.Throughput / satLock.Throughput)
	}
	fmt.Printf("speedup: %.2fx\n\n", speedup)

	// Equal offered load, set at 75% of the measured lockstep capacity:
	// both configs keep up, so percentiles measure service + queueing at
	// a load the lockstep tier can actually carry. The pipelined side
	// uses a load-appropriate small batch — the claim is "no worse tail
	// at equal load", not "saturation batching is free".
	eqRate := 0.75 * satLock.Throughput
	fmt.Printf("equal offered load (%.0f sets/s)\n", eqRate)
	eqLock := run("lockstep", lockstep(), 16, 0, 1, eqRate)
	eqPipe := run("pipelined", loadgen.PipelinedFactory(addr, 2), 16, 2, 4, eqRate)
	p99Ratio := 0.0
	if eqLock.P99Ms > 0 {
		p99Ratio = round2(eqPipe.P99Ms / eqLock.P99Ms)
	}
	fmt.Printf("p99 ratio (pipelined/lockstep): %.2f\n", p99Ratio)

	report := struct {
		Note       string    `json:"note"`
		GOMAXPROCS int       `json:"gomaxprocs"`
		Saturation []WireRun `json:"saturation"`
		Speedup    float64   `json:"speedup"`
		EqualLoad  []WireRun `json:"equal_load"`
		P99Ratio   float64   `json:"p99_ratio"`
	}{
		Note: "proxied fetch wire path, lockstep Version1 vs pipelined Version2 (tagged PDUs, " +
			"shared connections, batched sets, vectored writes): open-loop throughput at saturation, " +
			"then a latency pair at equal offered load (75% of lockstep capacity). Throughput and " +
			"offered rates count fetched PMID sets per second.",
		GOMAXPROCS: wireGOMAXPROCS,
		Saturation: []WireRun{satLock, satPipe},
		Speedup:    speedup,
		EqualLoad:  []WireRun{eqLock, eqPipe},
		P99Ratio:   p99Ratio,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", out)
}
