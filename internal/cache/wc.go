package cache

// wcEntry is one open block in a core's write-combining buffer.
type wcEntry struct {
	block    int64 // block number
	filled   int64 // bytes written into the block so far
	lastTick uint64
	used     bool
}

// numWCEntries is the number of concurrently open store-gather buffers
// per core.
const numWCEntries = 4

// wcBuffer models the store-gathering hardware used by cache-bypassing
// writes. Sequential stores accumulate into 64-byte blocks; a block is
// written to memory as one transaction when it fills, is displaced, or is
// flushed. Partially filled blocks still cost a full transaction, which
// is the write-amplification source behind the capped GEMV's extra write
// traffic (Fig. 5).
type wcBuffer struct {
	entries [numWCEntries]wcEntry
	tick    uint64
}

// add records size bytes stored at addr (all within one block), calling
// emit with each block number that must be written to memory as a result
// (a completed block, and/or a displaced older one).
func (b *wcBuffer) add(addr, size int64, emit func(block int64)) {
	b.tick++
	block := addr >> blockShift
	for i := range b.entries {
		e := &b.entries[i]
		if e.used && e.block == block {
			e.filled += size
			e.lastTick = b.tick
			if e.filled >= BlockBytes {
				e.used = false
				emit(block)
			}
			return
		}
	}
	if size >= BlockBytes {
		// A full-block store needs no gathering.
		emit(block)
		return
	}
	// Find a free entry, displacing the LRU one if the buffer is full.
	victim := -1
	for i := range b.entries {
		if !b.entries[i].used {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = 0
		for i := 1; i < numWCEntries; i++ {
			if b.entries[i].lastTick < b.entries[victim].lastTick {
				victim = i
			}
		}
		emit(b.entries[victim].block)
	}
	b.entries[victim] = wcEntry{block: block, filled: size, lastTick: b.tick, used: true}
}

// flushAll invalidates all entries, invoking emit for each open block.
func (b *wcBuffer) flushAll(emit func(block int64)) {
	for i := range b.entries {
		if b.entries[i].used {
			emit(b.entries[i].block)
			b.entries[i].used = false
		}
	}
}

// invalidate drops an open entry for block (used when a store stream's
// block gets allocated in cache after all). It reports whether an entry
// was dropped.
func (b *wcBuffer) invalidate(block int64) bool {
	for i := range b.entries {
		if b.entries[i].used && b.entries[i].block == block {
			b.entries[i].used = false
			return true
		}
	}
	return false
}
