package chaos

import (
	"errors"
	"net"
	"os"
	"strings"
	"testing"
	"time"

	"papimc/internal/faultconn"
	"papimc/internal/pcp"
	"papimc/internal/testutil"
)

// opts is the suite's base configuration: small enough to run under
// -race in CI, large enough that every profile fires real faults.
func opts(profile string) Options {
	return Options{
		Seed:     0xC4A05,
		Trials:   4,
		Ops:      30,
		Schedule: Profiles[profile],
		Trial:    -1,
	}
}

func TestCleanScheduleNoViolations(t *testing.T) {
	rep, err := Run(opts("clean"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("clean run failed:\n%s", rep)
	}
	for _, tr := range rep.Trials {
		if tr.FetchErrs != 0 || tr.NameErrs != 0 || tr.Stale != 0 || tr.Inconsist != 0 {
			t.Errorf("trial %d saw failures with no faults injected: %+v", tr.Index, tr)
		}
		if tr.Records == 0 {
			t.Errorf("trial %d recorded nothing", tr.Index)
		}
		f := tr.Faults
		f.Conns = 0 // connections are counted even when nothing fires
		if f != (faultconn.Stats{}) {
			t.Errorf("trial %d fired faults on an empty schedule: %s", tr.Index, tr.Faults)
		}
	}
}

// TestProfilesHoldInvariants is the core property test: under every
// fault profile the serving contract holds — correct coalesced answers,
// declared-stale answers, or clean errors; exact stats accounting; no
// partial archive rows.
func TestProfilesHoldInvariants(t *testing.T) {
	for _, name := range ProfileNames() {
		if name == "clean" {
			continue // covered above
		}
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			rep, err := Run(opts(name))
			if err != nil {
				t.Fatal(err)
			}
			if rep.Failed() {
				for _, tr := range rep.Trials {
					if len(tr.Violations) > 0 {
						t.Errorf("repro: %s", ReproLine(rep.Opts, tr.Index))
					}
				}
				t.Fatalf("invariant violations under %q:\n%s", name, rep)
			}
			// The profile must actually exercise something, or the pass
			// is vacuous.
			activity := 0
			for _, tr := range rep.Trials {
				f := tr.Faults
				activity += f.Refusals + f.Resets + f.Stalls + f.Corrupts + f.Latencies
				if name == "chunked" {
					activity++ // chunking is always-on, not a counted fault
				}
			}
			if activity == 0 {
				t.Fatalf("profile %q fired no faults across %d trials — vacuous pass", name, len(rep.Trials))
			}
		})
	}
}

// TestDeterministicAcrossRunsAndWorkers: a fixed seed reproduces the
// byte-identical report — same fault trace, same stats, same verdict —
// across repeated runs and across worker counts.
func TestDeterministicAcrossRunsAndWorkers(t *testing.T) {
	base := opts("mixed")
	run := func(workers int) string {
		o := base
		o.Workers = workers
		rep, err := Run(o)
		if err != nil {
			t.Fatal(err)
		}
		return rep.String()
	}
	seq := run(1)
	if again := run(1); again != seq {
		t.Fatalf("same seed, same workers, different report:\n--- a\n%s--- b\n%s", seq, again)
	}
	if par := run(4); par != seq {
		t.Fatalf("report differs across worker counts:\n--- workers=1\n%s--- workers=4\n%s", seq, par)
	}
	if strings.Count(seq, "trial") < base.Trials {
		t.Fatalf("report missing trials:\n%s", seq)
	}
}

// TestBreakStaleDetected: deliberately breaking stale serving (answers
// re-stamped to now) must fail the suite with a torn-value violation and
// a usable repro line — the suite's own smoke detector.
func TestBreakStaleDetected(t *testing.T) {
	o := opts("flaky") // resets + refused redials reliably force stale serves
	o.Trials = 6

	honest, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if honest.Failed() {
		t.Fatalf("honest stale serving must pass:\n%s", honest)
	}
	staleSeen := 0
	for _, tr := range honest.Trials {
		staleSeen += tr.Stale
	}
	if staleSeen == 0 {
		t.Fatal("no stale serves occurred — the BreakStale check below would be vacuous")
	}

	o.BreakStale = true
	broken, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if !broken.Failed() {
		t.Fatalf("re-stamped stale serving not detected:\n%s", broken)
	}
	found := false
	for _, tr := range broken.Trials {
		for _, v := range tr.Violations {
			if strings.Contains(v, "torn/corrupt value") {
				found = true
			}
		}
		if len(tr.Violations) > 0 {
			line := ReproLine(o, tr.Index)
			for _, want := range []string{"go run ./cmd/chaos", "-seed", "-trial ", "-break-stale"} {
				if !strings.Contains(line, want) {
					t.Errorf("repro line %q missing %q", line, want)
				}
			}
		}
	}
	if !found {
		t.Fatalf("violations did not identify the torn value:\n%s", broken)
	}
}

// TestSingleTrialReplayMatches: replaying one trial by index (the repro
// path) reproduces exactly the trial from the full sweep.
func TestSingleTrialReplayMatches(t *testing.T) {
	o := opts("resets")
	full, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Trial = 2
	replay, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(replay.Trials) != 1 {
		t.Fatalf("replay ran %d trials, want 1", len(replay.Trials))
	}
	want := full.Trials[2]
	got := replay.Trials[0]
	wantRep := (&Report{Trials: []Trial{want}}).String()
	gotRep := (&Report{Trials: []Trial{got}}).String()
	if gotRep != wantRep {
		t.Fatalf("replayed trial differs from sweep:\n--- sweep\n%s--- replay\n%s", wantRep, gotRep)
	}
}

// TestClientDeadlineUnderStall: a client whose round trips carry a
// deadline observes a timeout within bounds when the stream silently
// stalls — the deadline path fires, the call does not hang.
func TestClientDeadlineUnderStall(t *testing.T) {
	_, addr := testutil.StartSyntheticDaemon(t, 4)
	inj := faultconn.New(1, faultconn.Schedule{
		// Stall the response stream mid-PDU, after the 4-byte handshake
		// echo and the reply's first bytes.
		Exact:    []faultconn.Fault{{Conn: 0, Dir: faultconn.Read, Off: 7, Kind: faultconn.Stall}},
		MaxStall: 10 * time.Second, // the client deadline must win
	})
	raw, err := inj.Dial(func() (net.Conn, error) { return net.Dial("tcp", addr) })()
	if err != nil {
		t.Fatal(err)
	}
	// Version1: keeps read offset 7 inside the fetch response (the
	// version exchange would otherwise consume it) and exercises the
	// lockstep whole-connection deadline; the pipelined per-request
	// deadline has its own stall test.
	c, err := pcp.NewClientConnMax(raw, pcp.Version1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const deadline = 100 * time.Millisecond
	c.SetTimeout(deadline)
	start := time.Now()
	_, err = c.Fetch([]uint32{1, 2})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("fetch succeeded through a stalled stream")
	}
	var nerr net.Error
	if !errors.Is(err, os.ErrDeadlineExceeded) && !(errors.As(err, &nerr) && nerr.Timeout()) {
		t.Fatalf("err = %v, want a timeout", err)
	}
	if elapsed < deadline/2 || elapsed > 10*deadline {
		t.Fatalf("deadline fired after %v, want ~%v", elapsed, deadline)
	}
	if st := inj.Stats(); st.Stalls != 1 {
		t.Fatalf("injector stats = %s, want exactly one stall", st)
	}
}

// TestRecorderSurvivesExactMidWriteReset: a reset pinned mid-PDU on the
// proxy's upstream write path must not leave a partial archive row.
func TestRecorderSurvivesExactMidWriteReset(t *testing.T) {
	o := Options{
		Seed:   7,
		Trials: 1,
		Ops:    25,
		Trial:  -1,
		Schedule: faultconn.Schedule{Exact: []faultconn.Fault{
			{Conn: 0, Dir: faultconn.Write, Off: 9, Kind: faultconn.Reset}, // mid-request
			{Conn: 1, Dir: faultconn.Read, Off: 40, Kind: faultconn.Reset}, // mid-response
		}},
	}
	rep, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("mid-PDU resets broke an invariant:\n%s", rep)
	}
	tr := rep.Trials[0]
	if tr.Faults.Resets != 2 {
		t.Fatalf("fired %d resets, want 2 (%s)", tr.Faults.Resets, tr.Faults)
	}
	if tr.Records == 0 {
		t.Fatal("nothing recorded after resets — recorder never recovered")
	}
}
