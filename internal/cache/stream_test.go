package cache

import (
	"testing"
	"testing/quick"
)

func observeAll(d *detector, addrs []int64) (last streamClass, lastGap uint64) {
	for _, a := range addrs {
		last, lastGap = d.observe(a)
	}
	return last, lastGap
}

func seq(base, stride int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)*stride
	}
	return out
}

func TestDetectorSequentialStream(t *testing.T) {
	var d detector
	cls, _ := observeAll(&d, seq(0, 8, 10))
	if cls != classSequential {
		t.Errorf("stride-8 stream classified %d, want sequential", cls)
	}
	if d.stridedActive() {
		t.Error("sequential stream flagged strided")
	}
}

func TestDetectorStridedStream(t *testing.T) {
	var d detector
	cls, _ := observeAll(&d, seq(0, 4096, 10))
	if cls != classStrided {
		t.Errorf("stride-4096 stream classified %d, want strided", cls)
	}
	if !d.stridedActive() {
		t.Error("strided stream not active")
	}
}

func TestDetectorNegativeStride(t *testing.T) {
	var d detector
	if cls, _ := observeAll(&d, seq(1<<20, -8, 10)); cls != classSequential {
		t.Errorf("stride -8 classified %d, want sequential", cls)
	}
	var d2 detector
	if cls, _ := observeAll(&d2, seq(1<<20, -4096, 10)); cls != classStrided {
		t.Errorf("stride -4096 classified %d, want strided", cls)
	}
}

func TestDetectorFullLineStrideIsSequential(t *testing.T) {
	var d detector
	// 128-byte strides still walk blocks in order.
	if cls, _ := observeAll(&d, seq(0, 128, 10)); cls != classSequential {
		t.Errorf("stride-128 classified %d, want sequential", cls)
	}
}

// Two interleaved streams must be tracked in separate registers.
func TestDetectorInterleavedStreams(t *testing.T) {
	var d detector
	loadBase := int64(0)
	storeBase := int64(1 << 26) // beyond the 1 MiB retrain window
	var clsA, clsB streamClass
	for i := int64(0); i < 10; i++ {
		clsA, _ = d.observe(loadBase + i*4096)
		clsB, _ = d.observe(storeBase + i*16)
	}
	if clsA != classStrided {
		t.Errorf("interleaved strided stream classified %d", clsA)
	}
	if clsB != classSequential {
		t.Errorf("interleaved sequential stream classified %d", clsB)
	}
}

// Huge strides (like the combined nest's PLANES·ROWS jumps) must never
// confirm: their stores then write-allocate, as the paper observes.
func TestDetectorHugeStrideStaysUntrained(t *testing.T) {
	var d detector
	cls, _ := observeAll(&d, seq(0, 8<<20, 20))
	if cls != classUntrained {
		t.Errorf("8 MiB stride classified %d, want untrained", cls)
	}
}

// The gap return reflects the stream's inter-arrival distance: dense
// streams report small gaps, sparse ones (one store per row of loads)
// large gaps — the write-gather density rule.
func TestDetectorGapTracksDensity(t *testing.T) {
	var d detector
	loadBase, storeBase := int64(0), int64(1<<26)
	var storeGap uint64
	for i := int64(0); i < 8; i++ {
		for k := int64(0); k < 200; k++ {
			d.observe(loadBase + (i*200+k)*8)
		}
		_, storeGap = d.observe(storeBase + i*8)
	}
	if storeGap <= bypassMaxGap {
		t.Errorf("sparse store gap = %d, want > %d", storeGap, bypassMaxGap)
	}
	var d2 detector
	var denseGap uint64
	for i := int64(0); i < 10; i++ {
		_, denseGap = d2.observe(int64(i) * 16)
	}
	if denseGap > 2 {
		t.Errorf("dense stream gap = %d, want <= 2", denseGap)
	}
}

// stridedActive decays once the strided stream goes quiet.
func TestStridedActiveDecays(t *testing.T) {
	var d detector
	observeAll(&d, seq(0, 4096, 10))
	if !d.stridedActive() {
		t.Fatal("strided stream not active after training")
	}
	// Flood with sequential traffic well past the decay window.
	observeAll(&d, seq(1<<30, 8, stridedWindow+100))
	if d.stridedActive() {
		t.Error("strided stream still active after the decay window")
	}
}

// Property: the detector never classifies a constant-stride stream with
// |stride| <= 128 as strided, nor one with |stride| in (128, 1 MiB) as
// sequential, once confirmed.
func TestDetectorClassificationProperty(t *testing.T) {
	f := func(strideRaw int32, lenRaw uint8) bool {
		stride := int64(strideRaw)
		if stride == 0 {
			return true
		}
		if s := stride; s > 1<<20 || -s > 1<<20 {
			return true // huge strides never confirm; covered above
		}
		n := int(lenRaw%32) + confirmCount + 2
		var d detector
		cls, _ := observeAll(&d, seq(1<<21, stride, n))
		abs := stride
		if abs < 0 {
			abs = -abs
		}
		if abs <= sequentialMaxStride {
			return cls == classSequential
		}
		return cls == classStrided
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// --- write-gather buffer -------------------------------------------------

func TestWCBufferGathersFullBlock(t *testing.T) {
	var b wcBuffer
	var flushed []int64
	emit := func(blk int64) { flushed = append(flushed, blk) }
	// 8 stores of 8 bytes fill one 64-byte block exactly.
	for i := int64(0); i < 8; i++ {
		b.add(i*8, 8, emit)
	}
	if len(flushed) != 1 || flushed[0] != 0 {
		t.Errorf("flushed = %v, want [0]", flushed)
	}
}

func TestWCBufferDisplacesLRU(t *testing.T) {
	var b wcBuffer
	var flushed []int64
	emit := func(blk int64) { flushed = append(flushed, blk) }
	// Open 5 partial blocks; the 5th displaces the LRU (block 0).
	for i := int64(0); i < 5; i++ {
		b.add(i*64, 16, emit)
	}
	if len(flushed) != 1 || flushed[0] != 0 {
		t.Errorf("flushed = %v, want [0] (LRU displaced)", flushed)
	}
}

func TestWCBufferFullBlockStoreBypassesGathering(t *testing.T) {
	var b wcBuffer
	var flushed []int64
	b.add(128, 64, func(blk int64) { flushed = append(flushed, blk) })
	if len(flushed) != 1 || flushed[0] != 2 {
		t.Errorf("flushed = %v, want [2]", flushed)
	}
}

func TestWCBufferFlushAllAndInvalidate(t *testing.T) {
	var b wcBuffer
	noop := func(int64) {}
	b.add(0, 16, noop)
	b.add(64, 16, noop)
	b.add(128, 16, noop)
	if !b.invalidate(1) {
		t.Error("invalidate missed an open block")
	}
	if b.invalidate(1) {
		t.Error("invalidate found an already-dropped block")
	}
	var flushed []int64
	b.flushAll(func(blk int64) { flushed = append(flushed, blk) })
	if len(flushed) != 2 {
		t.Errorf("flushAll emitted %v, want 2 blocks", flushed)
	}
	flushed = nil
	b.flushAll(func(blk int64) { flushed = append(flushed, blk) })
	if len(flushed) != 0 {
		t.Error("second flushAll emitted blocks")
	}
}

// Property: every byte stored through the gather path is eventually
// covered by exactly the flushed blocks (no loss, no duplicates while
// open).
func TestWCBufferConservationProperty(t *testing.T) {
	f := func(blockIdx []uint8) bool {
		var b wcBuffer
		flushCount := map[int64]int{}
		emit := func(blk int64) { flushCount[blk]++ }
		open := map[int64]bool{}
		for _, raw := range blockIdx {
			blk := int64(raw % 16)
			b.add(blk*64+int64(raw%4)*16, 16, emit)
			open[blk] = true
		}
		b.flushAll(emit)
		// Every touched block flushed at least once.
		for blk := range open {
			if flushCount[blk] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
