package archive

import (
	"fmt"
	"sort"

	"papimc/internal/pcp"
)

// Rollup query path: answering floors, windows, and rates from rollup
// buckets instead of raw rows.
//
// Exactness contract. A tier's retained buckets hold adjacent samples
// at their facing edges (buckets are only evicted from the front), so
// the raw counter step across a bucket boundary is exactly
// pcp.CounterDelta(prev.Last, next.First) even when the counter wrapped
// there, and the steps inside a bucket are pre-summed (as integers) in
// Cols[c].Delta. A rate over a window whose edges do not split a
// bucket's sample span is therefore bit-for-bit the same sum of
// wrap-corrected steps the raw path computes. When a window edge does
// split a bucket, the bucket's Delta is weighted by the window's
// fractional overlap with the bucket's sample span — the documented
// approximation bound: the error is at most that one edge bucket's
// Delta, i.e. one bucket width of resolution per window edge.

// minBucketsPerWindow is the resolution-selection rule: a rollup tier
// is eligible for a window only if at least this many of its buckets
// fit, so edge-bucket approximation error stays under ~2/minBuckets of
// the window.
const minBucketsPerWindow = 4

// Buckets returns the tier's retained buckets whose sample span
// [FirstTS, LastTS] intersects [t0, t1], oldest first. Buckets are
// shared with the published snapshot and must be treated as read-only.
func (a *Archive) Buckets(res Resolution, t0, t1 int64) ([]Bucket, error) {
	s := a.snap.Load()
	t := s.tier(int64(res))
	if t == nil {
		return nil, fmt.Errorf("%w: %v", ErrNoTier, res)
	}
	lo, hi := bucketRange(t, t0, t1)
	out := make([]Bucket, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, *t.at(i))
	}
	return out, nil
}

// bucketRange returns [lo, hi) over the tier's combined bucket list for
// buckets intersecting [t0, t1].
func bucketRange(t *tierSnap, t0, t1 int64) (int, int) {
	n := t.count()
	lo := sort.Search(n, func(i int) bool { return t.at(i).LastTS >= t0 })
	hi := sort.Search(n, func(i int) bool { return t.at(i).FirstTS > t1 })
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// RateAt returns the metric's average rate over [t0, t1] at the given
// resolution. ResRaw delegates to Rate. For rollups, fully covered
// buckets contribute their exact intra-bucket Delta, boundary segments
// between consecutive buckets contribute the exact wrap-corrected
// cross-bucket step, and window edges that split a bucket weight its
// Delta by fractional overlap (see the package-level exactness
// contract).
func (a *Archive) RateAt(res Resolution, pmid uint32, t0, t1 int64) (float64, error) {
	if res == ResRaw {
		return a.Rate(pmid, t0, t1)
	}
	if t1 <= t0 {
		return 0, fmt.Errorf("archive: bad rate interval [%d, %d]", t0, t1)
	}
	c, ok := a.col[pmid]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoPMID, pmid)
	}
	s := a.snap.Load()
	t := s.tier(int64(res))
	if t == nil {
		return 0, fmt.Errorf("%w: %v", ErrNoTier, res)
	}
	if t.count() == 0 {
		return 0, ErrEmpty
	}
	sum := rollupDeltaSum(t, c, t0, t1)
	return sum / (float64(t1-t0) / 1e9), nil
}

// rollupDeltaSum computes Σ frac·delta over the tier's buckets and
// boundary segments overlapping [t0, t1].
func rollupDeltaSum(t *tierSnap, c int, t0, t1 int64) float64 {
	lo, hi := bucketRange(t, t0, t1)
	var sum float64
	for i := lo; i < hi; i++ {
		b := t.at(i)
		if b.FirstTS >= t0 && b.LastTS <= t1 {
			sum += float64(b.Cols[c].Delta)
		} else if f := overlapFrac(b.FirstTS, b.LastTS, t0, t1); f > 0 {
			sum += f * float64(b.Cols[c].Delta)
		}
	}
	// Boundary segments between consecutive retained buckets. Start one
	// bucket early: the segment out of a bucket ending before t0 can
	// still overlap the window.
	for i := max(lo-1, 0); i+1 < t.count(); i++ {
		b, nb := t.at(i), t.at(i+1)
		if b.LastTS >= t1 {
			break
		}
		if f := overlapFrac(b.LastTS, nb.FirstTS, t0, t1); f > 0 {
			sum += f * float64(int64(pcp.CounterDelta(b.Cols[c].Last, nb.Cols[c].First)))
		}
	}
	return sum
}

// FloorAt returns the newest sample at the given resolution with
// timestamp <= t: the raw floor for ResRaw, or a row synthesized from
// the newest rollup bucket whose last sample is <= t (timestamped at
// that sample, valued at the bucket's Last aggregates).
func (a *Archive) FloorAt(res Resolution, t int64) (Sample, bool) {
	if res == ResRaw {
		return a.Floor(t)
	}
	s := a.snap.Load()
	tr := s.tier(int64(res))
	if tr == nil || tr.count() == 0 {
		return Sample{}, false
	}
	n := tr.count()
	i := sort.Search(n, func(i int) bool { return tr.at(i).LastTS > t }) - 1
	if i < 0 {
		return Sample{}, false
	}
	b := tr.at(i)
	row := Sample{Timestamp: b.LastTS, Values: make([]uint64, len(b.Cols))}
	for c := range b.Cols {
		row.Values[c] = b.Cols[c].Last
	}
	return row, true
}

// WindowAgg is the aggregate of one metric over one time window at one
// resolution — what a windowed metricql function needs, without the
// rows.
type WindowAgg struct {
	Resolution Resolution
	Count      int     // samples in the window (bucket counts for rollups)
	Sum        float64 // Σ float64(value)
	Min, Max   uint64
	Delta      float64 // wrap-corrected increase over the window
	Seconds    float64 // window length in seconds
}

// Window aggregates the metric over the half-open window [t0, t1),
// picking the coarsest resolution that satisfies the window
// (SelectResolution). Raw windows aggregate rows with t0 <= ts < t1;
// rollup windows aggregate every bucket whose nominal range
// [Start, Start+res) intersects [t0, t1) — a window whose edges align
// with bucket boundaries covers its buckets exactly, so the rollup
// answer equals the raw answer; an unaligned edge over-includes at most
// one bucket's worth of samples per side (the documented bound).
func (a *Archive) Window(pmid uint32, t0, t1 int64) (WindowAgg, error) {
	return a.WindowAt(a.SelectResolution(t0, t1), pmid, t0, t1)
}

// WindowAt is Window pinned to one resolution.
func (a *Archive) WindowAt(res Resolution, pmid uint32, t0, t1 int64) (WindowAgg, error) {
	c, ok := a.col[pmid]
	if !ok {
		return WindowAgg{}, fmt.Errorf("%w: %d", ErrNoPMID, pmid)
	}
	if t1 <= t0 {
		return WindowAgg{}, fmt.Errorf("archive: bad window [%d, %d]", t0, t1)
	}
	agg := WindowAgg{Resolution: res, Seconds: float64(t1-t0) / 1e9}
	s := a.snap.Load()
	if res == ResRaw {
		rows, err := a.Samples(t0, t1-1)
		if err != nil {
			return WindowAgg{}, err
		}
		for i, r := range rows {
			v := r.Values[c]
			if i == 0 {
				agg.Min, agg.Max = v, v
			} else {
				if v < agg.Min {
					agg.Min = v
				}
				if v > agg.Max {
					agg.Max = v
				}
			}
			agg.Sum += float64(v)
		}
		agg.Count = len(rows)
		if agg.Count > 0 {
			d, err := a.rawDeltaSum(s, c, t0, t1)
			if err != nil {
				return WindowAgg{}, err
			}
			agg.Delta = d
		}
		return agg, nil
	}
	t := s.tier(int64(res))
	if t == nil {
		return WindowAgg{}, fmt.Errorf("%w: %v", ErrNoTier, res)
	}
	// Buckets whose nominal range [Start, Start+res) intersects [t0, t1).
	n := t.count()
	lo := sort.Search(n, func(i int) bool { return t.at(i).Start+int64(res) > t0 })
	hi := sort.Search(n, func(i int) bool { return t.at(i).Start >= t1 })
	if hi < lo {
		hi = lo
	}
	for i := lo; i < hi; i++ {
		b := t.at(i)
		ca := b.Cols[c]
		if agg.Count == 0 {
			agg.Min, agg.Max = ca.Min, ca.Max
		} else {
			if ca.Min < agg.Min {
				agg.Min = ca.Min
			}
			if ca.Max > agg.Max {
				agg.Max = ca.Max
			}
		}
		agg.Sum += ca.Sum
		agg.Count += b.Count
	}
	if agg.Count > 0 {
		agg.Delta = rollupDeltaSum(t, c, t0, t1)
	}
	return agg, nil
}

// SelectResolution picks the coarsest tier whose buckets are fine
// enough for the window — at least minBucketsPerWindow buckets fit in
// (t1 - t0) — and whose retained history covers t0; raw wins when no
// rollup qualifies. A tier also qualifies on coverage when the window
// starts before *all* retained data (everything clamps the same way).
func (a *Archive) SelectResolution(t0, t1 int64) Resolution {
	window := t1 - t0
	if window <= 0 {
		return ResRaw
	}
	s := a.snap.Load()
	oldestAny := int64(0)
	haveAny := false
	if first, _, ok := s.rawSpan(); ok {
		oldestAny, haveAny = first, true
	}
	for i := range s.tiers {
		t := &s.tiers[i]
		if t.count() > 0 {
			if f := t.at(0).FirstTS; !haveAny || f < oldestAny {
				oldestAny, haveAny = f, true
			}
		}
	}
	for i := len(s.tiers) - 1; i >= 0; i-- {
		t := &s.tiers[i]
		if t.count() == 0 || t.res*minBucketsPerWindow > window {
			continue
		}
		if t.at(0).FirstTS <= t0 || (haveAny && t.at(0).FirstTS <= oldestAny) {
			return Resolution(t.res)
		}
	}
	return ResRaw
}
