// Package fft implements the distributed 3D Fast Fourier Transform
// mini-app of Section IV: a from-scratch complex FFT (radix-2 plus
// Bluestein's algorithm for the paper's non-power-of-two sizes like 1344
// and 2016), the data re-sorting routines S1CF/S1PF/S2CF/S2PF with both
// their numeric implementations and their loop-nest traffic descriptors,
// and the r×c pencil-decomposed distributed transform over the simulated
// MPI/InfiniBand substrate.
package fft

import (
	"fmt"
	"math"
	"math/bits"
)

// Forward computes the in-place unnormalized DFT
// X_j = Σ_k x_k·exp(-2πi·jk/N) for any length.
func Forward(x []complex128) {
	transform(x, false)
}

// Inverse computes the in-place normalized inverse DFT, so that
// Inverse(Forward(x)) == x.
func Inverse(x []complex128) {
	transform(x, true)
}

func transform(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	if inverse {
		conjugate(x)
	}
	if n&(n-1) == 0 {
		radix2(x)
	} else {
		bluestein(x)
	}
	if inverse {
		conjugate(x)
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
}

func conjugate(x []complex128) {
	for i := range x {
		x[i] = complex(real(x[i]), -imag(x[i]))
	}
}

// radix2 is the iterative Cooley–Tukey FFT for power-of-two lengths.
func radix2(x []complex128) {
	n := len(x)
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := -2 * math.Pi / float64(size)
		wBase := complex(math.Cos(step), math.Sin(step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wBase
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT as a circular convolution
// (chirp-z transform) using a power-of-two FFT.
func bluestein(x []complex128) {
	n := len(x)
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	// Chirp w_k = exp(-iπ k²/N); computed with k² mod 2N to avoid
	// precision loss at large k.
	w := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := int64(k) * int64(k) % int64(2*n)
		phi := -math.Pi * float64(kk) / float64(n)
		w[k] = complex(math.Cos(phi), math.Sin(phi))
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * w[k]
		inv := complex(real(w[k]), -imag(w[k]))
		b[k] = inv
		if k > 0 {
			b[m-k] = inv
		}
	}
	radix2(a)
	radix2(b)
	for i := range a {
		a[i] *= b[i]
	}
	// Inverse FFT of a (power of two): conj, fft, conj, scale.
	conjugate(a)
	radix2(a)
	conjugate(a)
	scale := complex(1/float64(m), 0)
	for j := 0; j < n; j++ {
		x[j] = a[j] * scale * w[j]
	}
}

// NaiveDFT computes the unnormalized DFT directly in O(N²); reference
// for tests.
func NaiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for j := 0; j < n; j++ {
		var sum complex128
		for k := 0; k < n; k++ {
			phi := -2 * math.Pi * float64(j) * float64(k) / float64(n)
			sum += x[k] * complex(math.Cos(phi), math.Sin(phi))
		}
		out[j] = sum
	}
	return out
}

// ForwardBatch applies Forward to each contiguous length-n row of data.
// It panics if len(data) is not a multiple of n.
func ForwardBatch(data []complex128, n int) {
	if n <= 0 || len(data)%n != 0 {
		panic(fmt.Sprintf("fft: batch of %d elements is not a multiple of %d", len(data), n))
	}
	for off := 0; off < len(data); off += n {
		Forward(data[off : off+n])
	}
}

// FFT3D computes the in-place forward 3D DFT of an n×n×n array stored
// row-major as [x][y][z]; reference for the distributed pipeline.
func FFT3D(a []complex128, n int) {
	if len(a) != n*n*n {
		panic(fmt.Sprintf("fft: FFT3D on %d elements, want %d", len(a), n*n*n))
	}
	// Along z: contiguous rows.
	ForwardBatch(a, n)
	// Along y.
	tmp := make([]complex128, n)
	for x := 0; x < n; x++ {
		for z := 0; z < n; z++ {
			for y := 0; y < n; y++ {
				tmp[y] = a[(x*n+y)*n+z]
			}
			Forward(tmp)
			for y := 0; y < n; y++ {
				a[(x*n+y)*n+z] = tmp[y]
			}
		}
	}
	// Along x.
	for y := 0; y < n; y++ {
		for z := 0; z < n; z++ {
			for x := 0; x < n; x++ {
				tmp[x] = a[(x*n+y)*n+z]
			}
			Forward(tmp)
			for x := 0; x < n; x++ {
				a[(x*n+y)*n+z] = tmp[x]
			}
		}
	}
}
