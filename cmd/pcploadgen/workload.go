// Workload-model mode: -spec runs a declarative workload through
// internal/workload — virtual time by default, a real tier with -live —
// with optional trace recording and bit-exact replay.
package main

import (
	"fmt"
	"os"
	"strings"

	"papimc/internal/arch"
	"papimc/internal/loadgen"
	"papimc/internal/node"
	"papimc/internal/workload"
)

func workloadMain(specPath, replayPath, recordPath string, mult float64, live bool, target, machine string, workers int) {
	if specPath == "" {
		wfail(fmt.Errorf("-replay needs -spec: the trace stores the schedule, the spec the cohorts and service model"))
	}
	spec, err := workload.LoadSpec(specPath)
	if err != nil {
		wfail(err)
	}
	o := workload.Options{Mult: mult}
	var tr workload.Trace
	if recordPath != "" {
		o.Record = &tr
	}
	if live {
		addr, cleanup, err := resolveLiveAddr(target, machine)
		if err != nil {
			wfail(err)
		}
		defer cleanup()
		fmt.Printf("live tier at %s, %d executor connections\n", addr, workers)
		o.Live = &workload.LiveOptions{Factory: loadgen.DialFactory(addr), Workers: workers}
	}
	var rep *workload.Report
	if replayPath != "" {
		rec, err := workload.ReadTraceFile(replayPath)
		if err != nil {
			wfail(err)
		}
		rep, err = workload.Replay(rec, spec, o)
		if err != nil {
			wfail(err)
		}
		fmt.Printf("replayed %d requests from %s\n", len(rec.Rows), replayPath)
	} else {
		rep, err = workload.Run(spec, o)
		if err != nil {
			wfail(err)
		}
	}
	fmt.Print(rep.Render())
	if recordPath != "" {
		if err := tr.WriteFile(recordPath); err != nil {
			wfail(err)
		}
		fmt.Printf("recorded %d requests to %s\n", len(tr.Rows), recordPath)
	}
}

// resolveLiveAddr turns the -target flag into one dialable address: a
// self-hosted testbed tier by name, or an external host:port as given.
func resolveLiveAddr(target, machine string) (string, func(), error) {
	switch target {
	case "daemon", "proxy", "both":
		m := arch.Summit()
		if strings.EqualFold(machine, "tellico") {
			m = arch.Tellico()
		}
		tb, err := node.NewTestbed(m, 1, node.Options{DisableNoise: true})
		if err != nil {
			return "", nil, err
		}
		if target == "proxy" {
			_, addr, err := tb.StartProxy()
			if err != nil {
				tb.Close()
				return "", nil, err
			}
			return addr, func() { tb.Close() }, nil
		}
		return tb.PMCDAddr, func() { tb.Close() }, nil
	default:
		return target, func() {}, nil
	}
}

func wfail(err error) {
	fmt.Fprintln(os.Stderr, "pcploadgen:", err)
	os.Exit(1)
}
