package pcp

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// tframe builds a tagged wire frame with an arbitrary (possibly lying)
// length prefix for seeding the fuzzer.
func tframe(length uint32, typ uint8, tag uint32, payload []byte) []byte {
	b := make([]byte, TaggedHdrLen, TaggedHdrLen+len(payload))
	binary.BigEndian.PutUint32(b, length)
	b[4] = typ
	binary.BigEndian.PutUint32(b[5:9], tag)
	return append(b, payload...)
}

// wframe is tframe for the Version3 wide frame format: the same lying
// length prefix plus an arbitrary (possibly hostile) tenant field.
func wframe(length uint32, typ uint8, tag, tenant uint32, payload []byte) []byte {
	b := make([]byte, WideHdrLen, WideHdrLen+len(payload))
	binary.BigEndian.PutUint32(b, length)
	b[4] = typ
	binary.BigEndian.PutUint32(b[5:9], tag)
	binary.BigEndian.PutUint32(b[9:13], tenant)
	return append(b, payload...)
}

// recordedPipelinedSession reproduces the byte stream of a realistic
// Version2 exchange — interleaved requests and out-of-order responses,
// including a batch — as seed material: the frames a demux reader
// actually sees, in an order lockstep framing never produces.
func recordedPipelinedSession(t interface{ Fatal(args ...any) }) []byte {
	var buf bytes.Buffer
	write := func(typ uint8, tag uint32, payload []byte) {
		if err := WriteTaggedPDU(&buf, typ, tag, payload); err != nil {
			t.Fatal(err)
		}
	}
	write(PDUNamesReq, 1, nil)
	write(PDUFetchReq, 2, EncodeFetchReq([]uint32{1, 2, 3}))
	write(PDUFetchBatchReq, 3, EncodeFetchBatchReq([][]uint32{{1, 2}, {3}}))
	// Responses complete out of order: 3, 1, 2.
	write(PDUFetchBatchResp, 3, EncodeFetchBatchResp([]FetchResult{
		{Timestamp: 5, Values: []FetchValue{{PMID: 1, Status: StatusOK, Value: 5}, {PMID: 2, Status: StatusOK, Value: 5}}},
		{Timestamp: 5, Values: []FetchValue{{PMID: 3, Status: StatusNoSuchPMID}}},
	}, []string{"node7"}, "edge down"))
	write(PDUNamesResp, 1, EncodeNamesResp([]NameEntry{{PMID: 1, Name: "mem.read_bw"}}))
	write(PDUFetchResp, 2, EncodeFetchResp(FetchResult{Timestamp: 5, Values: []FetchValue{{PMID: 1, Status: StatusOK, Value: 5}}}))
	return buf.Bytes()
}

// FuzzReadTaggedPDU extends FuzzReadPDU's robustness contract to the
// Version2 tagged frame format: hostile tag/length combinations fail
// with ErrProtocol (never a panic, never an allocation past
// MaxPDUBytes), accepted frames round-trip bytewise through
// WriteTaggedPDU with type and tag preserved, and the Version2 payload
// decoders (version, batch request, batch response) are total on
// arbitrary accepted payloads.
func FuzzReadTaggedPDU(f *testing.F) {
	// Well-formed frames of each Version2 PDU type.
	f.Add(tframe(4, PDUVersionReq, 0, EncodeVersion(Version2)))
	f.Add(tframe(4, PDUVersionResp, 0, EncodeVersion(Version1)))
	f.Add(tframe(uint32(len(EncodeFetchReq([]uint32{1, 2}))), PDUFetchReq, 7, EncodeFetchReq([]uint32{1, 2})))
	br := EncodeFetchBatchReq([][]uint32{{1, 2, 3}, {4}, {}})
	f.Add(tframe(uint32(len(br)), PDUFetchBatchReq, 9, br))
	bresp := EncodeFetchBatchResp([]FetchResult{
		{Timestamp: 1, Values: []FetchValue{{PMID: 1, Status: StatusOK, Value: 1}}},
	}, nil, "")
	f.Add(tframe(uint32(len(bresp)), PDUFetchBatchResp, 9, bresp))
	f.Add(tframe(uint32(len(EncodeError("boom"))), PDUError, 0xDEADBEEF, EncodeError("boom")))
	// A recorded pipelined session: interleaved tags, out-of-order
	// completion, a partial batch. The fuzzer reads the first frame and
	// mutates from there into mid-stream corruption.
	f.Add(recordedPipelinedSession(f))
	f.Add(recordedPipelinedSession(f)[9:]) // session cut mid-stream at a frame boundary
	// Hostile tag/length combinations.
	f.Add(tframe(0xFFFFFFFF, PDUFetchResp, 0xFFFFFFFF, nil)) // oversize claim, hostile tag
	f.Add(tframe(MaxPDUBytes+1, PDUFetchBatchResp, 1, nil))  // just over the cap
	f.Add(tframe(100, PDUFetchBatchReq, 2, []byte{1, 2, 3})) // claims more than present
	f.Add(tframe(2, PDUVersionResp, 3, []byte{0, 0, 0, 2}))  // claims less than present
	f.Add([]byte{0, 0, 0, 1, 9, 0})                          // truncated header
	f.Add(tframe(8, PDUFetchBatchReq, 0, bytes.Repeat([]byte{0xFF}, 8)))
	// Version3 wide frames, including hostile tenant tags: the extra
	// tenant word must never confuse either reader, and any 32-bit tenant
	// value must be structurally accepted (policy is the admission
	// layer's job, not the framing's).
	se := EncodeStatusError(StatusOverload, "shed: tenant over quota")
	f.Add(wframe(uint32(len(se)), PDUStatusError, 11, 3, se))
	f.Add(wframe(uint32(len(EncodeFetchReq([]uint32{1}))), PDUFetchReq, 1, 0xFFFFFFFF, EncodeFetchReq([]uint32{1})))
	f.Add(wframe(4, PDUVersionReq, 0, 0xDEADBEEF, EncodeVersion(Version3)))
	f.Add(wframe(0xFFFFFFFF, PDUFetchResp, 2, 0x41414141, nil)) // oversize claim, hostile tenant
	f.Add(wframe(100, PDUFetchReq, 3, 0, []byte{1, 2}))         // claims more than present

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, tag, payload, err := ReadTaggedPDUInto(bufio.NewReader(bytes.NewReader(data)), nil)
		if err != nil {
			if errors.Is(err, ErrPDUTooLarge) && !errors.Is(err, ErrProtocol) {
				t.Fatal("ErrPDUTooLarge must wrap ErrProtocol")
			}
			return
		}
		if len(payload) > MaxPDUBytes {
			t.Fatalf("accepted %d-byte payload beyond MaxPDUBytes", len(payload))
		}
		// An accepted frame round-trips bytewise, tag included.
		var buf bytes.Buffer
		if err := WriteTaggedPDU(&buf, typ, tag, payload); err != nil {
			t.Fatalf("WriteTaggedPDU of accepted frame: %v", err)
		}
		typ2, tag2, payload2, err := ReadTaggedPDUInto(bufio.NewReader(&buf), nil)
		if err != nil {
			t.Fatalf("re-read of written frame: %v", err)
		}
		if typ2 != typ || tag2 != tag || !bytes.Equal(payload2, payload) {
			t.Fatalf("round trip changed frame: type %d->%d, tag %d->%d, %d->%d bytes",
				typ, typ2, tag, tag2, len(payload), len(payload2))
		}
		// Header-only reads must leave the payload unread so a demux
		// reader can discard unknown tags without buffering them. (buf
		// was drained by the re-read above; rebuild the frame.)
		if err := WriteTaggedPDU(&buf, typ, tag, payload); err != nil {
			t.Fatal(err)
		}
		hr := bytes.NewReader(buf.Bytes())
		if _, _, n, err := ReadTaggedHeader(hr); err != nil {
			t.Fatalf("ReadTaggedHeader on accepted frame: %v", err)
		} else if hr.Len() != int(n) {
			t.Fatalf("ReadTaggedHeader consumed payload bytes: %d left, want %d", hr.Len(), n)
		}
		// Version2 decoders must be total on arbitrary accepted payloads.
		if v, err := DecodeVersion(payload); err == nil && v == 0 {
			t.Fatal("DecodeVersion accepted version 0")
		}
		if sets, err := DecodeFetchBatchReqInto(payload, nil); err == nil {
			if len(sets) > MaxBatchSets {
				t.Fatalf("DecodeFetchBatchReqInto produced implausible %d sets", len(sets))
			}
		}
		if out, pe, err := DecodeFetchBatchRespInto(payload, nil); err == nil {
			total := 0
			for _, r := range out {
				total += len(r.Values)
			}
			if total > MaxPDUBytes/12 {
				t.Fatalf("DecodeFetchBatchRespInto produced implausible %d values", total)
			}
			if pe != nil && len(pe.Missing) > MaxPDUBytes/4 {
				t.Fatalf("DecodeFetchBatchRespInto produced implausible %d missing nodes", len(pe.Missing))
			}
		}
		if se, err := DecodeStatusError(payload); err == nil {
			if errors.Is(se, ErrOverload) != (se.Status == StatusOverload) {
				t.Fatalf("StatusError{%d} overload classification inconsistent", se.Status)
			}
		}
		// The same bytes through the wide reader: same robustness contract,
		// and accepted wide frames round-trip with the tenant preserved.
		wtyp, wtag, wtenant, wpayload, err := ReadWidePDUInto(bufio.NewReader(bytes.NewReader(data)), nil)
		if err != nil {
			if errors.Is(err, ErrPDUTooLarge) && !errors.Is(err, ErrProtocol) {
				t.Fatal("wide ErrPDUTooLarge must wrap ErrProtocol")
			}
			return
		}
		if len(wpayload) > MaxPDUBytes {
			t.Fatalf("wide reader accepted %d-byte payload beyond MaxPDUBytes", len(wpayload))
		}
		var wbuf bytes.Buffer
		if err := WriteWidePDU(&wbuf, wtyp, wtag, wtenant, wpayload); err != nil {
			t.Fatalf("WriteWidePDU of accepted frame: %v", err)
		}
		wtyp2, wtag2, wtenant2, wpayload2, err := ReadWidePDUInto(bufio.NewReader(bytes.NewReader(wbuf.Bytes())), nil)
		if err != nil {
			t.Fatalf("re-read of written wide frame: %v", err)
		}
		if wtyp2 != wtyp || wtag2 != wtag || wtenant2 != wtenant || !bytes.Equal(wpayload2, wpayload) {
			t.Fatalf("wide round trip changed frame: type %d->%d, tag %d->%d, tenant %d->%d",
				wtyp, wtyp2, wtag, wtag2, wtenant, wtenant2)
		}
		whr := bytes.NewReader(wbuf.Bytes())
		if _, _, _, n, err := ReadWideHeader(whr); err != nil {
			t.Fatalf("ReadWideHeader on accepted frame: %v", err)
		} else if whr.Len() != int(n) {
			t.Fatalf("ReadWideHeader consumed payload bytes: %d left, want %d", whr.Len(), n)
		}
	})
}
