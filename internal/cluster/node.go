package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"papimc/internal/pcp"
	"papimc/internal/simtime"
)

// ErrNodeDown is the typed failure of a gated node source: the node is
// killed (immediate refusal) or stalled (refusal after the stall).
var ErrNodeDown = errors.New("cluster: node down")

// Node gate states.
const (
	nodeUp int32 = iota
	nodeKilled
	nodeStalled
)

// Node is one simulated cluster member: a PMCD daemon with its own
// architecture parameters (channel count varies by seed) and noise seed,
// plus a fault gate the chaos harness flips to take the node down.
//
// All nodes of a tree share one simtime.Clock, which is what makes a
// cluster-wide consistent snapshot possible: with the clock held still,
// every daemon that resamples does so at the same virtual time.
type Node struct {
	Name   string
	Seed   uint64
	Daemon *pcp.Daemon

	state atomic.Int32
	stall atomic.Int64 // per-attempt stall when state == nodeStalled, wall ns
}

// NodeChannels returns the node's memory-channel count, an
// architecture parameter varied by seed: 4, 6 or 8 channels, so a
// cluster is heterogeneous the way a real machine-room is.
func NodeChannels(seed uint64) int {
	return 4 + 2*int(mix(seed)%3)
}

// MetricNames returns the node's metric namespace for a seed, sorted
// (the daemon's PMID order): cpu.cycles, cpu.instructions, one
// mem.ch<k>.read_bw per channel, mem.read_bw and mem.write_bw.
func MetricNames(seed uint64) []string {
	names := []string{"cpu.cycles", "cpu.instructions", "mem.read_bw", "mem.write_bw"}
	for ch := 0; ch < NodeChannels(seed); ch++ {
		names = append(names, fmt.Sprintf("mem.ch%d.read_bw", ch))
	}
	sort.Strings(names)
	return names
}

// NewNode builds a node named name with the given noise seed, sampling
// on the shared clock every interval. The daemon is in-process only
// until the tree decides to serve it (Tree net mode).
func NewNode(name string, seed uint64, clock *simtime.Clock, interval simtime.Duration) (*Node, error) {
	names := MetricNames(seed)
	ms := make([]pcp.Metric, len(names))
	for i, mn := range names {
		pmid := uint32(i + 1) // sorted-name order IS the daemon's PMID order
		ms[i] = pcp.Metric{
			Name: mn,
			Read: func(t simtime.Time) (uint64, error) { return MetricValue(seed, pmid, int64(t)), nil },
		}
	}
	d, err := pcp.NewDaemon(clock, interval, ms)
	if err != nil {
		return nil, fmt.Errorf("cluster: node %s: %w", name, err)
	}
	return &Node{Name: name, Seed: seed, Daemon: d}, nil
}

// Kill takes the node down: every fetch through its gate fails
// immediately until Restore.
func (n *Node) Kill() { n.state.Store(nodeKilled) }

// Stall makes the node pathologically slow: every fetch attempt through
// its gate blocks for d of wall time and then fails. With d beyond the
// edge deadline the node is deterministically missing from every
// answer; with d between HedgeAfter and the deadline it is the slow
// child that hedged retries race.
func (n *Node) Stall(d time.Duration) {
	n.stall.Store(int64(d))
	n.state.Store(nodeStalled)
}

// Restore brings the node back up.
func (n *Node) Restore() { n.state.Store(nodeUp) }

// Down reports whether the gate is currently refusing fetches.
func (n *Node) Down() bool { return n.state.Load() != nodeUp }

// Source returns the node's gated in-process metric source: the
// daemon's lock-free fetch path behind the fault gate.
func (n *Node) Source() Source {
	return n.GateSource(daemonSource{n.Daemon})
}

// GateSource wraps any source (an in-process daemon, a dialled client)
// with the node's fault gate, so Kill and Stall work the same whether
// the tree edge is a function call or a TCP connection.
func (n *Node) GateSource(src Source) Source {
	return &gatedSource{n: n, src: src}
}

// daemonSource adapts the in-process daemon to Source.
type daemonSource struct{ d *pcp.Daemon }

func (s daemonSource) Names() ([]pcp.NameEntry, error)               { return s.d.Names(), nil }
func (s daemonSource) Fetch(pmids []uint32) (pcp.FetchResult, error) { return s.d.Fetch(pmids), nil }

type gatedSource struct {
	n   *Node
	src Source
}

// Names is ungated: the namespace is topology, not data, and federators
// read it once at construction.
func (g *gatedSource) Names() ([]pcp.NameEntry, error) { return g.src.Names() }

func (g *gatedSource) Fetch(pmids []uint32) (pcp.FetchResult, error) {
	switch g.n.state.Load() {
	case nodeKilled:
		return pcp.FetchResult{}, fmt.Errorf("%w: %s: connection refused", ErrNodeDown, g.n.Name)
	case nodeStalled:
		time.Sleep(time.Duration(g.n.stall.Load()))
		return pcp.FetchResult{}, fmt.Errorf("%w: %s: stalled", ErrNodeDown, g.n.Name)
	}
	return g.src.Fetch(pmids)
}
