package pcp

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"papimc/internal/arch"
	"papimc/internal/mem"
	"papimc/internal/nest"
	"papimc/internal/simtime"
)

// --- PDU round trips ---------------------------------------------------

func TestNamesRespRoundTrip(t *testing.T) {
	in := []NameEntry{{1, "a.b.c"}, {2, ""}, {7, "perfevent.hwcounters.x.value"}}
	out, err := decodeNamesResp(encodeNamesResp(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("entry %d = %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestFetchRespRoundTrip(t *testing.T) {
	in := FetchResult{
		Timestamp: -42,
		Values: []FetchValue{
			{PMID: 1, Status: StatusOK, Value: 1 << 60},
			{PMID: 9, Status: StatusNoSuchPMID, Value: 0},
		},
	}
	out, err := decodeFetchResp(encodeFetchResp(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Timestamp != in.Timestamp || len(out.Values) != 2 ||
		out.Values[0] != in.Values[0] || out.Values[1] != in.Values[1] {
		t.Errorf("round trip mismatch: %+v", out)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	full := encodeFetchResp(FetchResult{Timestamp: 1, Values: []FetchValue{{PMID: 1}}})
	for cut := 1; cut < len(full); cut++ {
		if _, err := decodeFetchResp(full[:cut]); !errors.Is(err, ErrProtocol) {
			t.Errorf("truncation at %d not detected: %v", cut, err)
		}
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	b := append(encodeFetchReq([]uint32{1, 2}), 0xFF)
	if _, err := decodeFetchReq(b); !errors.Is(err, ErrProtocol) {
		t.Errorf("trailing garbage not detected: %v", err)
	}
}

func TestPDURoundTripProperty(t *testing.T) {
	f := func(ts int64, pmids []uint32, statuses []int32, values []uint64) bool {
		res := FetchResult{Timestamp: ts}
		for i, id := range pmids {
			v := FetchValue{PMID: id}
			if i < len(statuses) {
				v.Status = statuses[i]
			}
			if i < len(values) {
				v.Value = values[i]
			}
			res.Values = append(res.Values, v)
		}
		out, err := decodeFetchResp(encodeFetchResp(res))
		if err != nil || out.Timestamp != ts || len(out.Values) != len(res.Values) {
			return false
		}
		for i := range res.Values {
			if out.Values[i] != res.Values[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNamesRoundTripProperty(t *testing.T) {
	f := func(names []string) bool {
		in := make([]NameEntry, len(names))
		for i, n := range names {
			in[i] = NameEntry{PMID: uint32(i), Name: n}
		}
		out, err := decodeNamesResp(encodeNamesResp(in))
		if err != nil || len(out) != len(in) {
			return false
		}
		for i := range in {
			if out[i] != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// --- daemon & client ---------------------------------------------------

// testSetup builds a Summit-like socket PMU fed by an ideal controller,
// a daemon exporting it, and a connected client.
func testSetup(t *testing.T) (*mem.Controller, *simtime.Clock, *Daemon, *Client) {
	t.Helper()
	clock := simtime.NewClock()
	m := arch.Summit()
	ctl := mem.NewController(mem.Config{Channels: m.Socket.MBAChannels, DisableNoise: true}, clock)
	pmu := nest.NewPMU(m, 0, ctl)
	d, err := NewDaemon(clock, 10*simtime.Millisecond, NestMetrics([]*nest.PMU{pmu}, nest.RootCredential()))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := d.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return ctl, clock, d, c
}

func TestDaemonNamesOverNetwork(t *testing.T) {
	_, _, _, c := testSetup(t)
	entries, err := c.Names()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 16 {
		t.Fatalf("got %d metrics, want 16", len(entries))
	}
	found := false
	for _, e := range entries {
		if e.Name == "perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value.cpu87" {
			found = true
		}
		if e.PMID == 0 {
			t.Errorf("metric %q has PMID 0", e.Name)
		}
	}
	if !found {
		t.Error("Table I Summit metric name missing from namespace")
	}
}

func TestFetchSeesTraffic(t *testing.T) {
	ctl, clock, _, c := testSetup(t)
	ctl.AddTraffic(true, 0, 64*800, 0, 0)
	clock.Advance(100 * simtime.Millisecond)
	var names []string
	for ch := 0; ch < 8; ch++ {
		names = append(names, NestMetricName(nestPMU(ctl), nest.Event{Channel: ch}))
	}
	res, err := c.FetchByName(names...)
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for _, v := range res.Values {
		if v.Status != StatusOK {
			t.Fatalf("value status %d", v.Status)
		}
		sum += v.Value
	}
	if sum != 64*800 {
		t.Errorf("read sum over PCP = %d, want %d", sum, 64*800)
	}
}

// nestPMU rebuilds a PMU handle for naming purposes only.
func nestPMU(ctl *mem.Controller) *nest.PMU {
	return nest.NewPMU(arch.Summit(), 0, ctl)
}

func TestDaemonSamplingIntervalStaleness(t *testing.T) {
	ctl, clock, _, c := testSetup(t)
	name := NestMetricName(nestPMU(ctl), nest.Event{Channel: 0})
	// First fetch samples at t=0.
	res1, err := c.FetchByName(name)
	if err != nil {
		t.Fatal(err)
	}
	// New traffic, but within the same sampling interval: stale value.
	ctl.AddTraffic(true, 0, 64*8000, 0, 0)
	clock.Advance(simtime.Millisecond)
	res2, err := c.FetchByName(name)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Values[0].Value != res1.Values[0].Value {
		t.Errorf("value refreshed within sampling interval: %d -> %d",
			res1.Values[0].Value, res2.Values[0].Value)
	}
	if res2.Timestamp != res1.Timestamp {
		t.Errorf("timestamp advanced within interval")
	}
	// After the interval elapses the new traffic is visible.
	clock.Advance(20 * simtime.Millisecond)
	res3, err := c.FetchByName(name)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Values[0].Value <= res1.Values[0].Value {
		t.Errorf("value did not refresh after interval: %d", res3.Values[0].Value)
	}
}

func TestFetchUnknownPMID(t *testing.T) {
	_, _, _, c := testSetup(t)
	res, err := c.Fetch([]uint32{9999, 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Values {
		if v.Status != StatusNoSuchPMID {
			t.Errorf("pmid %d status = %d, want StatusNoSuchPMID", v.PMID, v.Status)
		}
	}
}

func TestLookupUnknownName(t *testing.T) {
	_, _, _, c := testSetup(t)
	if _, err := c.Lookup("no.such.metric"); err == nil {
		t.Error("expected error for unknown metric")
	}
}

// TestConcurrentClients spins a daemon and hammers it from several
// goroutines to exercise concurrent connection handling.
func TestConcurrentClients(t *testing.T) {
	clock := simtime.NewClock()
	m := arch.Summit()
	ctl := mem.NewController(mem.Config{Channels: 8, DisableNoise: true}, clock)
	pmu := nest.NewPMU(m, 0, ctl)
	d, err := NewDaemon(clock, simtime.Millisecond, NestMetrics([]*nest.PMU{pmu}, nest.RootCredential()))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := d.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func() {
			c, err := Dial(addr)
			if err != nil {
				done <- err
				return
			}
			defer c.Close()
			for i := 0; i < 50; i++ {
				if _, err := c.Fetch([]uint32{1, 2, 3}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Errorf("client goroutine: %v", err)
		}
	}
}

func TestNewDaemonValidation(t *testing.T) {
	clock := simtime.NewClock()
	if _, err := NewDaemon(clock, 0, nil); err == nil {
		t.Error("expected error for zero interval")
	}
	dup := []Metric{
		{Name: "a", Read: func(simtime.Time) (uint64, error) { return 0, nil }},
		{Name: "a", Read: func(simtime.Time) (uint64, error) { return 0, nil }},
	}
	if _, err := NewDaemon(clock, 1, dup); err == nil {
		t.Error("expected error for duplicate metric")
	}
	if _, err := NewDaemon(clock, 1, []Metric{{Name: "x"}}); err == nil {
		t.Error("expected error for nil reader")
	}
}

func TestBadHandshakeRejected(t *testing.T) {
	clock := simtime.NewClock()
	d, err := NewDaemon(clock, simtime.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := d.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// A client that speaks the wrong magic gets disconnected.
	c, err := DialRaw(addr, "NOPE")
	if err == nil {
		c.Close()
		t.Error("expected handshake failure")
	}
	if err != nil && !strings.Contains(err.Error(), "handshake") && !errors.Is(err, ErrProtocol) {
		// Accept either: connection closed during handshake or explicit
		// protocol error.
		t.Logf("handshake failed as expected: %v", err)
	}
}
