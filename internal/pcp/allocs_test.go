package pcp

import (
	"testing"
)

// The fetch PDU round trip runs once per counter read on the PCP route;
// with reused buffers the encode+decode pair must not allocate.
func TestFetchRespRoundTripDoesNotAllocate(t *testing.T) {
	res := FetchResult{Timestamp: 123456789}
	for i := 0; i < 16; i++ {
		res.Values = append(res.Values, FetchValue{PMID: uint32(i + 1), Status: StatusOK, Value: uint64(i) * 64})
	}
	var buf []byte
	var dec FetchResult
	// Prime the reusable buffers.
	buf = AppendFetchResp(buf[:0], res)
	if err := DecodeFetchRespInto(buf, &dec); err != nil {
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(100, func() {
		buf = AppendFetchResp(buf[:0], res)
		if err := DecodeFetchRespInto(buf, &dec); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("fetch resp round trip allocates %.1f objects per run, want 0", got)
	}
	if len(dec.Values) != len(res.Values) || dec.Values[7] != res.Values[7] {
		t.Errorf("round trip corrupted values: %+v", dec.Values)
	}
}

// The request side of the same round trip.
func TestFetchReqRoundTripDoesNotAllocate(t *testing.T) {
	pmids := []uint32{1, 2, 3, 4, 5, 6, 7, 8}
	var buf []byte
	var dst []uint32
	buf = AppendFetchReq(buf[:0], pmids)
	var err error
	if dst, err = DecodeFetchReqInto(buf, dst[:0]); err != nil {
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(100, func() {
		buf = AppendFetchReq(buf[:0], pmids)
		dst, err = DecodeFetchReqInto(buf, dst[:0])
		if err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("fetch req round trip allocates %.1f objects per run, want 0", got)
	}
	if len(dst) != len(pmids) || dst[3] != 4 {
		t.Errorf("round trip corrupted pmids: %v", dst)
	}
}
