package archive

import (
	"errors"
	"math"
	"testing"
)

// fillArchive appends n rows at the given cadence (ns): column 0 is a
// counter starting near 2^64 that wraps early and climbs by incr per
// row, column 1 is a well-behaved counter, column 2 a sawtooth level.
func fillArchive(t *testing.T, a *Archive, n int, cadence int64, incr uint64) {
	t.Helper()
	v0 := ^uint64(0) - incr*3
	for i := 0; i < n; i++ {
		if err := a.Append(row(int64(i)*cadence,
			v0+uint64(i)*incr,
			uint64(i)*incr*2,
			uint64(500+100*(i%7)),
		)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRollupRateMatchesRawExactly: on bucket-aligned windows a rollup
// rate must equal the raw-path rate bit for bit — including across a
// counter wrap — because both are the same sum of wrap-corrected
// integer steps.
func TestRollupRateMatchesRawExactly(t *testing.T) {
	a, _ := New(schema(3), Options{BlockSamples: 16, Rollups: []int64{1000, 10_000}})
	fillArchive(t, a, 500, 100, 400) // 500 rows, 100ns cadence, wraps at i=4

	windows := []struct {
		t0, t1 int64
		res    []Resolution // tiers the window is bucket-aligned for
	}{
		{0, 49_900, []Resolution{1000, 10_000}},      // whole archive
		{10_000, 40_000, []Resolution{1000, 10_000}}, // interior, aligned to both tiers
		{1000, 2000, []Resolution{1000}},             // one fine bucket (splits a coarse one)
		{0, 10_000, []Resolution{1000, 10_000}},      // prefix
	}
	for _, pm := range []uint32{1, 2, 3} {
		for _, w := range windows {
			raw, err := a.Rate(pm, w.t0, w.t1)
			if err != nil {
				t.Fatal(err)
			}
			for _, res := range w.res {
				ru, err := a.RateAt(res, pm, w.t0, w.t1)
				if err != nil {
					t.Fatal(err)
				}
				if ru != raw {
					t.Errorf("pmid %d window [%d %d] res %v: rollup rate %v != raw rate %v", pm, w.t0, w.t1, res, ru, raw)
				}
			}
		}
	}
}

// TestRollupWindowMatchesRaw: WindowAt aggregates (count, sum, min,
// max) over rollups must equal the raw aggregates exactly on aligned
// windows — integer-valued samples, so the float sums are exact.
func TestRollupWindowMatchesRaw(t *testing.T) {
	a, _ := New(schema(3), Options{BlockSamples: 16, Rollups: []int64{1000, 10_000}})
	fillArchive(t, a, 500, 100, 400)
	for _, pm := range []uint32{2, 3} {
		for _, w := range [][2]int64{{0, 50_000}, {10_000, 40_000}} {
			raw, err := a.WindowAt(ResRaw, pm, w[0], w[1])
			if err != nil {
				t.Fatal(err)
			}
			for _, res := range []Resolution{1000, 10_000} {
				ru, err := a.WindowAt(res, pm, w[0], w[1])
				if err != nil {
					t.Fatal(err)
				}
				if ru.Count != raw.Count || ru.Sum != raw.Sum || ru.Min != raw.Min || ru.Max != raw.Max {
					t.Errorf("pmid %d window %v res %v: rollup agg %+v != raw %+v", pm, w, res, ru, raw)
				}
				if ru.Delta != raw.Delta {
					t.Errorf("pmid %d window %v res %v: rollup delta %v != raw %v", pm, w, res, ru.Delta, raw.Delta)
				}
			}
		}
	}
}

// TestRollupUnalignedWindowBound: when a window edge splits a bucket,
// the rollup rate approximates by fractional overlap; the error must
// stay within one edge bucket's delta on each side.
func TestRollupUnalignedWindowBound(t *testing.T) {
	a, _ := New(schema(3), Options{BlockSamples: 16, Rollups: []int64{1000}})
	fillArchive(t, a, 500, 100, 400)
	t0, t1 := int64(1550), int64(42_350) // both edges mid-bucket
	raw, err := a.Rate(2, t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	ru, err := a.RateAt(1000, 2, t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	// Each edge bucket holds 10 rows of +800 = 8000 counts; over the
	// ~40.8µs window that bounds the rate error.
	bound := 2 * 8000.0 / (float64(t1-t0) / 1e9)
	if math.Abs(ru-raw) > bound {
		t.Errorf("unaligned rollup rate %v vs raw %v: |diff| %v exceeds documented bound %v", ru, raw, math.Abs(ru-raw), bound)
	}
}

// TestSelectResolution pins the pushdown planning rule: coarsest tier
// with at least minBucketsPerWindow buckets in the window and coverage
// of t0; raw otherwise.
func TestSelectResolution(t *testing.T) {
	a, _ := New(schema(3), Options{BlockSamples: 16, Rollups: []int64{1000, 10_000}})
	fillArchive(t, a, 500, 100, 400) // span [0, 49_900]

	cases := []struct {
		name   string
		t0, t1 int64
		want   Resolution
	}{
		{"tiny window stays raw", 40_000, 41_000, ResRaw},
		{"4 fine buckets fit", 40_000, 44_000, Resolution(1000)},
		{"coarse tier wins when 4 fit", 0, 49_900, Resolution(10_000)},
		{"just under 4 coarse buckets", 0, 39_999, Resolution(1000)},
		{"window before all data clamps alike", -100_000, -50_000, Resolution(10_000)},
		{"degenerate window", 10, 10, ResRaw},
	}
	for _, c := range cases {
		if got := a.SelectResolution(c.t0, c.t1); got != c.want {
			t.Errorf("%s: SelectResolution(%d, %d) = %v, want %v", c.name, c.t0, c.t1, got, c.want)
		}
	}
}

// TestFloorAtRollup: FloorAt against a rollup tier serves the newest
// bucket's last-sample aggregates at the bucket's last-sample
// timestamp.
func TestFloorAtRollup(t *testing.T) {
	a, _ := New(schema(3), Options{Rollups: []int64{1000}})
	fillArchive(t, a, 50, 100, 400) // 5 buckets of 10 rows

	if _, ok := a.FloorAt(Resolution(1000), -1); ok {
		t.Error("FloorAt before all buckets should miss")
	}
	s, ok := a.FloorAt(Resolution(1000), 2499)
	if !ok || s.Timestamp != 1900 {
		t.Fatalf("FloorAt(2499) = %+v, %v; want bucket ending at 1900", s, ok)
	}
	raw, _ := a.Floor(1900)
	if s.Values[0] != raw.Values[0] || s.Values[1] != raw.Values[1] || s.Values[2] != raw.Values[2] {
		t.Errorf("rollup floor values %v != raw row at 1900 %v", s.Values, raw.Values)
	}
	if _, err := a.RateAt(Resolution(777), 1, 0, 1000); !errors.Is(err, ErrNoTier) {
		t.Errorf("unknown tier err = %v, want ErrNoTier", err)
	}
}

// TestRollupBucketCap: tiers evict their oldest completed buckets past
// MaxBuckets, and the eviction is visible in Stats.
func TestRollupBucketCap(t *testing.T) {
	a, _ := New(schema(3), Options{Rollups: []int64{1000}, MaxBuckets: 8})
	fillArchive(t, a, 300, 100, 400) // 30 buckets worth
	st := a.Stats()
	if len(st.Tiers) != 1 {
		t.Fatalf("tiers = %+v", st.Tiers)
	}
	if st.Tiers[0].Buckets != 9 { // 8 completed + 1 open
		t.Errorf("retained buckets = %d, want 9", st.Tiers[0].Buckets)
	}
	if st.Tiers[0].Evicted != 21 {
		t.Errorf("evicted buckets = %d, want 21", st.Tiers[0].Evicted)
	}
	// Rates over the retained bucket range still match raw exactly.
	raw, _ := a.Rate(2, 22_000, 28_000)
	ru, err := a.RateAt(1000, 2, 22_000, 28_000)
	if err != nil || ru != raw {
		t.Errorf("rate over capped tier = %v, %v; want %v", ru, err, raw)
	}
}
