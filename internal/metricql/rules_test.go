package metricql

import (
	"testing"

	"papimc/internal/simtime"
)

func TestRulesetValidation(t *testing.T) {
	e, _ := newEngineFake()
	rs := NewRuleset(e, func(Firing) {})
	if err := rs.Add(Rule{Name: "bad-op", Expr: "kernel.load", Op: "==", Threshold: 1}); err == nil {
		t.Error("bad comparison accepted")
	}
	if err := rs.Add(Rule{Name: "bad-expr", Expr: "rate(", Op: ">", Threshold: 1}); err == nil {
		t.Error("unparsable expression accepted")
	}
	if err := rs.Add(Rule{Name: "vector", Expr: "nest.mba*.read_bytes", Op: ">", Threshold: 1}); err == nil {
		t.Error("vector-valued rule accepted")
	}
	if err := rs.Add(Rule{Name: "ok", Expr: "sum(nest.mba*.read_bytes)", Op: ">", Threshold: 1}); err != nil {
		t.Errorf("valid rule rejected: %v", err)
	}
}

func TestRulesetHoldAndHysteresis(t *testing.T) {
	e, f := newEngineFake()
	var fired []Firing
	rs := NewRuleset(e, func(fi Firing) { fired = append(fired, fi) })
	err := rs.Add(Rule{
		Name:      "high-read-bw",
		Expr:      "rate(nest.mba0.read_bytes)",
		Op:        ">",
		Threshold: 1000,
		Hold:      2,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Per-step rates: 0 (first sample), 2000, 2000, 2000, 100, 2000, 2000.
	incs := []uint64{0, 2000, 2000, 2000, 100, 2000, 2000}
	var acc uint64
	for i, inc := range incs {
		acc += inc
		f.vals[1] = acc
		f.ts = int64(i) * 1_000_000_000
		if err := rs.Step(); err != nil {
			t.Fatal(err)
		}
	}
	// Breach run starts at step 1; Hold=2 delays the firing to step 2.
	// Steps 3 still breaches but hysteresis holds (no clear sample yet).
	// Step 4 clears and re-arms; steps 5–6 breach and fire at step 6.
	if len(fired) != 2 {
		t.Fatalf("fired %d times (%v), want 2", len(fired), fired)
	}
	if fired[0].Timestamp != 2_000_000_000 {
		t.Errorf("first firing at ts %d, want 2e9", fired[0].Timestamp)
	}
	if fired[0].Value != 2000 {
		t.Errorf("first firing value %v, want 2000", fired[0].Value)
	}
	if fired[1].Timestamp != 6_000_000_000 {
		t.Errorf("second firing at ts %d, want 6e9", fired[1].Timestamp)
	}
}

func TestRulesetHoldoff(t *testing.T) {
	e, f := newEngineFake()
	var fired []Firing
	rs := NewRuleset(e, func(fi Firing) { fired = append(fired, fi) })
	err := rs.Add(Rule{
		Name:      "load",
		Expr:      "kernel.load",
		Op:        ">=",
		Threshold: 5,
		Holdoff:   simtime.Duration(3_500_000_000),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Alternate breach/clear every second: without holdoff the rule
	// would fire at t=0,2,4,6; the 3.5s holdoff suppresses t=2 (and the
	// hysteresis is satisfied by the clear samples in between).
	for i := 0; i < 8; i++ {
		if i%2 == 0 {
			f.vals[5] = 10
		} else {
			f.vals[5] = 1
		}
		f.ts = int64(i) * 1_000_000_000
		if err := rs.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if len(fired) != 2 {
		t.Fatalf("fired %d times (%v), want 2", len(fired), fired)
	}
	if fired[0].Timestamp != 0 || fired[1].Timestamp != 4_000_000_000 {
		t.Errorf("firings at %d, %d; want 0 and 4e9", fired[0].Timestamp, fired[1].Timestamp)
	}
}

func TestRulesetSameIntervalNoop(t *testing.T) {
	e, f := newEngineFake()
	var fired int
	rs := NewRuleset(e, func(Firing) { fired++ })
	if err := rs.Add(Rule{Name: "load", Expr: "kernel.load", Op: ">", Threshold: 5}); err != nil {
		t.Fatal(err)
	}
	f.vals[5] = 10
	f.ts = 1_000_000_000
	for i := 0; i < 5; i++ {
		if err := rs.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if fired != 1 {
		t.Errorf("five same-interval steps fired %d times, want 1", fired)
	}
}
