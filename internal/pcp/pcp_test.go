package pcp

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"papimc/internal/arch"
	"papimc/internal/mem"
	"papimc/internal/nest"
	"papimc/internal/simtime"
)

// --- PDU round trips ---------------------------------------------------

func TestNamesRespRoundTrip(t *testing.T) {
	in := []NameEntry{{1, "a.b.c"}, {2, ""}, {7, "perfevent.hwcounters.x.value"}}
	out, err := DecodeNamesResp(EncodeNamesResp(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("entry %d = %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestFetchRespRoundTrip(t *testing.T) {
	in := FetchResult{
		Timestamp: -42,
		Values: []FetchValue{
			{PMID: 1, Status: StatusOK, Value: 1 << 60},
			{PMID: 9, Status: StatusNoSuchPMID, Value: 0},
		},
	}
	out, err := DecodeFetchResp(EncodeFetchResp(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Timestamp != in.Timestamp || len(out.Values) != 2 ||
		out.Values[0] != in.Values[0] || out.Values[1] != in.Values[1] {
		t.Errorf("round trip mismatch: %+v", out)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	full := EncodeFetchResp(FetchResult{Timestamp: 1, Values: []FetchValue{{PMID: 1}}})
	for cut := 1; cut < len(full); cut++ {
		if _, err := DecodeFetchResp(full[:cut]); !errors.Is(err, ErrProtocol) {
			t.Errorf("truncation at %d not detected: %v", cut, err)
		}
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	b := append(EncodeFetchReq([]uint32{1, 2}), 0xFF)
	if _, err := DecodeFetchReq(b); !errors.Is(err, ErrProtocol) {
		t.Errorf("trailing garbage not detected: %v", err)
	}
}

func TestPDURoundTripProperty(t *testing.T) {
	f := func(ts int64, pmids []uint32, statuses []int32, values []uint64) bool {
		res := FetchResult{Timestamp: ts}
		for i, id := range pmids {
			v := FetchValue{PMID: id}
			if i < len(statuses) {
				v.Status = statuses[i]
			}
			if i < len(values) {
				v.Value = values[i]
			}
			res.Values = append(res.Values, v)
		}
		out, err := DecodeFetchResp(EncodeFetchResp(res))
		if err != nil || out.Timestamp != ts || len(out.Values) != len(res.Values) {
			return false
		}
		for i := range res.Values {
			if out.Values[i] != res.Values[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNamesRoundTripProperty(t *testing.T) {
	f := func(names []string) bool {
		in := make([]NameEntry, len(names))
		for i, n := range names {
			in[i] = NameEntry{PMID: uint32(i), Name: n}
		}
		out, err := DecodeNamesResp(EncodeNamesResp(in))
		if err != nil || len(out) != len(in) {
			return false
		}
		for i := range in {
			if out[i] != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// --- daemon & client ---------------------------------------------------

// testSetup builds a Summit-like socket PMU fed by an ideal controller,
// a daemon exporting it, and a connected client.
func testSetup(t *testing.T) (*mem.Controller, *simtime.Clock, *Daemon, *Client) {
	t.Helper()
	clock := simtime.NewClock()
	m := arch.Summit()
	ctl := mem.NewController(mem.Config{Channels: m.Socket.MBAChannels, DisableNoise: true}, clock)
	pmu := nest.NewPMU(m, 0, ctl)
	d, err := NewDaemon(clock, 10*simtime.Millisecond, NestMetrics([]*nest.PMU{pmu}, nest.RootCredential()))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := d.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return ctl, clock, d, c
}

func TestDaemonNamesOverNetwork(t *testing.T) {
	_, _, _, c := testSetup(t)
	entries, err := c.Names()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 16 {
		t.Fatalf("got %d metrics, want 16", len(entries))
	}
	found := false
	for _, e := range entries {
		if e.Name == "perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value.cpu87" {
			found = true
		}
		if e.PMID == 0 {
			t.Errorf("metric %q has PMID 0", e.Name)
		}
	}
	if !found {
		t.Error("Table I Summit metric name missing from namespace")
	}
}

func TestFetchSeesTraffic(t *testing.T) {
	ctl, clock, _, c := testSetup(t)
	ctl.AddTraffic(true, 0, 64*800, 0, 0)
	clock.Advance(100 * simtime.Millisecond)
	var names []string
	for ch := 0; ch < 8; ch++ {
		names = append(names, NestMetricName(nestPMU(ctl), nest.Event{Channel: ch}))
	}
	res, err := c.FetchByName(names...)
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for _, v := range res.Values {
		if v.Status != StatusOK {
			t.Fatalf("value status %d", v.Status)
		}
		sum += v.Value
	}
	if sum != 64*800 {
		t.Errorf("read sum over PCP = %d, want %d", sum, 64*800)
	}
}

// nestPMU rebuilds a PMU handle for naming purposes only.
func nestPMU(ctl *mem.Controller) *nest.PMU {
	return nest.NewPMU(arch.Summit(), 0, ctl)
}

func TestDaemonSamplingIntervalStaleness(t *testing.T) {
	ctl, clock, _, c := testSetup(t)
	name := NestMetricName(nestPMU(ctl), nest.Event{Channel: 0})
	// First fetch samples at t=0.
	res1, err := c.FetchByName(name)
	if err != nil {
		t.Fatal(err)
	}
	// New traffic, but within the same sampling interval: stale value.
	ctl.AddTraffic(true, 0, 64*8000, 0, 0)
	clock.Advance(simtime.Millisecond)
	res2, err := c.FetchByName(name)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Values[0].Value != res1.Values[0].Value {
		t.Errorf("value refreshed within sampling interval: %d -> %d",
			res1.Values[0].Value, res2.Values[0].Value)
	}
	if res2.Timestamp != res1.Timestamp {
		t.Errorf("timestamp advanced within interval")
	}
	// After the interval elapses the new traffic is visible.
	clock.Advance(20 * simtime.Millisecond)
	res3, err := c.FetchByName(name)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Values[0].Value <= res1.Values[0].Value {
		t.Errorf("value did not refresh after interval: %d", res3.Values[0].Value)
	}
}

func TestFetchUnknownPMID(t *testing.T) {
	_, _, _, c := testSetup(t)
	res, err := c.Fetch([]uint32{9999, 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Values {
		if v.Status != StatusNoSuchPMID {
			t.Errorf("pmid %d status = %d, want StatusNoSuchPMID", v.PMID, v.Status)
		}
	}
}

func TestLookupUnknownName(t *testing.T) {
	_, _, _, c := testSetup(t)
	if _, err := c.Lookup("no.such.metric"); err == nil {
		t.Error("expected error for unknown metric")
	}
}

// TestConcurrentClients spins a daemon and hammers it from several
// goroutines to exercise concurrent connection handling.
func TestConcurrentClients(t *testing.T) {
	clock := simtime.NewClock()
	m := arch.Summit()
	ctl := mem.NewController(mem.Config{Channels: 8, DisableNoise: true}, clock)
	pmu := nest.NewPMU(m, 0, ctl)
	d, err := NewDaemon(clock, simtime.Millisecond, NestMetrics([]*nest.PMU{pmu}, nest.RootCredential()))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := d.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func() {
			c, err := Dial(addr)
			if err != nil {
				done <- err
				return
			}
			defer c.Close()
			for i := 0; i < 50; i++ {
				if _, err := c.Fetch([]uint32{1, 2, 3}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Errorf("client goroutine: %v", err)
		}
	}
}

func TestNewDaemonValidation(t *testing.T) {
	clock := simtime.NewClock()
	if _, err := NewDaemon(clock, 0, nil); err == nil {
		t.Error("expected error for zero interval")
	}
	dup := []Metric{
		{Name: "a", Read: func(simtime.Time) (uint64, error) { return 0, nil }},
		{Name: "a", Read: func(simtime.Time) (uint64, error) { return 0, nil }},
	}
	if _, err := NewDaemon(clock, 1, dup); err == nil {
		t.Error("expected error for duplicate metric")
	}
	if _, err := NewDaemon(clock, 1, []Metric{{Name: "x"}}); err == nil {
		t.Error("expected error for nil reader")
	}
}

func TestBadHandshakeRejected(t *testing.T) {
	clock := simtime.NewClock()
	d, err := NewDaemon(clock, simtime.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := d.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// A client that speaks the wrong magic gets disconnected.
	c, err := DialRaw(addr, "NOPE")
	if err == nil {
		c.Close()
		t.Error("expected handshake failure")
	}
	if err != nil && !strings.Contains(err.Error(), "handshake") && !errors.Is(err, ErrProtocol) {
		// Accept either: connection closed during handshake or explicit
		// protocol error.
		t.Logf("handshake failed as expected: %v", err)
	}
}

// --- satellite coverage: hostile PDUs, namespace growth, fan-out -------

// TestReadPDURejectsHostileLength: a corrupt/hostile length prefix must
// fail with the typed error before any allocation is attempted.
func TestReadPDURejectsHostileLength(t *testing.T) {
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF, PDUFetchReq} // claims a 4 GiB payload
	_, _, err := ReadPDU(bytes.NewReader(hdr))
	if !errors.Is(err, ErrPDUTooLarge) {
		t.Errorf("err = %v, want ErrPDUTooLarge", err)
	}
	if !errors.Is(err, ErrProtocol) {
		t.Errorf("ErrPDUTooLarge should wrap ErrProtocol; got %v", err)
	}
	// One past the limit is rejected; the limit itself is not.
	hdr = make([]byte, 5)
	binary.BigEndian.PutUint32(hdr, MaxPDUBytes+1)
	if _, _, err := ReadPDU(bytes.NewReader(hdr)); !errors.Is(err, ErrPDUTooLarge) {
		t.Errorf("limit+1 err = %v", err)
	}
	binary.BigEndian.PutUint32(hdr, 3)
	body := append(append([]byte(nil), hdr...), 1, 2, 3)
	if typ, payload, err := ReadPDU(bytes.NewReader(body)); err != nil || typ != 0 || len(payload) != 3 {
		t.Errorf("valid frame rejected: %v", err)
	}
}

func TestWritePDURejectsOversizePayload(t *testing.T) {
	var sink bytes.Buffer
	err := WritePDU(&sink, PDUFetchReq, make([]byte, MaxPDUBytes+1))
	if !errors.Is(err, ErrPDUTooLarge) {
		t.Errorf("err = %v, want ErrPDUTooLarge", err)
	}
	if sink.Len() != 0 {
		t.Error("oversize write emitted bytes")
	}
}

// TestLookupRefreshesOnMiss: a metric registered after the client cached
// the name table still resolves — the client refreshes once on a miss
// instead of returning a permanent "unknown metric" error.
func TestLookupRefreshesOnMiss(t *testing.T) {
	_, _, d, c := testSetup(t)
	if _, err := c.Names(); err != nil { // populate the cache
		t.Fatal(err)
	}
	const late = "perfevent.hwcounters.late_agent.value.cpu87"
	if err := d.Register(Metric{Name: late, Read: func(simtime.Time) (uint64, error) { return 1234, nil }}); err != nil {
		t.Fatal(err)
	}
	id, err := c.Lookup(late)
	if err != nil {
		t.Fatalf("Lookup after namespace growth: %v", err)
	}
	if id == 0 {
		t.Error("resolved PMID 0")
	}
	res, err := c.FetchByName(late)
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[0].Status != StatusOK || res.Values[0].Value != 1234 {
		t.Errorf("late metric fetch = %+v", res.Values[0])
	}
	// A genuinely unknown metric still errors (after one refresh).
	if _, err := c.Lookup("still.not.there"); err == nil {
		t.Error("expected error for unknown metric")
	}
}

func TestDaemonRegisterValidation(t *testing.T) {
	_, _, d, _ := testSetup(t)
	if err := d.Register(Metric{Name: "no.reader"}); err == nil {
		t.Error("expected error for nil reader")
	}
	existing := d.Names()[0].Name
	if err := d.Register(Metric{Name: existing,
		Read: func(simtime.Time) (uint64, error) { return 0, nil }}); err == nil {
		t.Error("expected error for duplicate metric")
	}
}

// TestDaemonFanOutRace hammers one daemon from many goroutines mixing
// FetchByName and Names while the clock advances concurrently, asserting
// no lost responses and per-connection monotonic timestamps. Run with
// -race, this is the serving tier's concurrency gate.
func TestDaemonFanOutRace(t *testing.T) {
	ctl, clock, _, _ := testSetup(t)
	addr := func() string {
		// testSetup's client is unused here; each goroutine dials its own.
		d, err := NewDaemon(clock, simtime.Millisecond, NestMetrics([]*nest.PMU{nestPMU(ctl)}, nest.RootCredential()))
		if err != nil {
			t.Fatal(err)
		}
		a, err := d.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { d.Close() })
		return a
	}()
	name := NestMetricName(nestPMU(ctl), nest.Event{Channel: 0})

	const goroutines = 16
	const iters = 40
	stopTick := make(chan struct{})
	var tickWG sync.WaitGroup
	tickWG.Add(1)
	go func() { // concurrent time + traffic source
		defer tickWG.Done()
		for {
			select {
			case <-stopTick:
				return
			default:
				ctl.AddTraffic(true, 0, 64, clock.Now(), clock.Now())
				clock.Advance(100 * simtime.Microsecond)
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			var lastTS int64 = -1
			for i := 0; i < iters; i++ {
				if i%8 == 0 {
					entries, err := c.Names()
					if err != nil {
						errs <- fmt.Errorf("names: %w", err)
						return
					}
					if len(entries) == 0 {
						errs <- fmt.Errorf("lost names response")
						return
					}
				}
				res, err := c.FetchByName(name)
				if err != nil {
					errs <- fmt.Errorf("fetch %d: %w", i, err)
					return
				}
				if len(res.Values) != 1 {
					errs <- fmt.Errorf("fetch %d: %d values", i, len(res.Values))
					return
				}
				if res.Timestamp < lastTS {
					errs <- fmt.Errorf("timestamp went backwards: %d -> %d", lastTS, res.Timestamp)
					return
				}
				lastTS = res.Timestamp
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(stopTick)
	tickWG.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}
