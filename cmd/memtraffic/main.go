// Command memtraffic runs the BLAS memory-traffic accuracy experiments
// of Sections II–III (Figs. 2–5) and prints the measured-vs-expected
// table and an ASCII chart.
//
// Usage:
//
//	memtraffic -fig 2a|2b|3a|3b|4a|4b|5a|5b [-quick] [-csv FILE] [-j N]
//
// -j parallelizes the size sweep; output is byte-identical for every
// worker count.
package main

import (
	"flag"
	"fmt"
	"os"

	"papimc/internal/figures"
)

func main() {
	fig := flag.String("fig", "3b", "figure to reproduce: 2a 2b 3a 3b 4a 4b 5a 5b")
	quick := flag.Bool("quick", false, "shrink the size sweep")
	csv := flag.String("csv", "", "also write the table as CSV to this file")
	seed := flag.Uint64("seed", 0, "noise seed (0 = default)")
	workers := flag.Int("j", 0, "parallel sweep workers (0 = one per CPU, 1 = serial)")
	flag.Parse()

	g, err := figures.ByID("fig" + *fig)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	res, err := g.Gen(figures.Options{Quick: *quick, Seed: *seed, Workers: *workers})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s\n\n", res.Title)
	res.Table.Write(os.Stdout)
	if res.Chart != nil {
		fmt.Println()
		res.Chart.Write(os.Stdout)
	}
	if *csv != "" {
		f, err := os.Create(*csv)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := res.Table.WriteCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
