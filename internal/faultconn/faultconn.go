// Package faultconn is a deterministic fault-injecting transport: it
// wraps net.Conn, net.Listener and dial functions so the serving stack
// (PMCD daemon, pmproxy, archive recorder, clients) can be tested under
// reproducible network failure.
//
// Determinism follows the same discipline as internal/sweep: every
// stochastic decision is drawn from SplitMix64 substreams of one base
// seed, keyed by connection index and stream direction — never by wall
// time or syscall count. Stream faults fire at byte offsets: a fault
// scheduled "after 1234 bytes" fires at exactly that point in the byte
// stream no matter how TCP segments it, how big the peer's bufio reads
// are, or how many goroutines are running. Two runs with the same seed
// therefore inject byte-identical fault traces, which is what makes a
// chaos-suite failure replayable from its seed line.
//
// The fault vocabulary is composable — a Schedule can mix:
//
//   - Refuse: a new connection is refused at dial/accept time.
//   - Reset: the connection dies mid-stream (mid-PDU, mid-handshake).
//   - Stall: the stream silently stops delivering bytes; the caller's
//     deadline (or MaxStall) eventually surfaces a timeout.
//   - Corrupt: a single byte of the stream is bit-flipped in flight.
//   - Latency: a one-off delay is inserted at a stream offset.
//   - BytesPerSec: a bandwidth cap paced per delivered chunk.
//   - MaxChunk: reads and writes are split into short chunks whose sizes
//     are drawn from the offset, exercising partial-I/O handling.
//
// Probabilistic faults are drawn per direction with mean spacing
// (ResetEvery, StallEvery, ...); exact-offset faults (Schedule.Exact)
// pin a fault to one connection, direction and byte for targeted tests
// such as "reset exactly mid-PDU".
package faultconn

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"papimc/internal/xrand"
)

// Kind enumerates the injectable faults.
type Kind uint8

const (
	// Refuse rejects a connection at dial or accept time.
	Refuse Kind = iota
	// Reset kills an established connection mid-stream.
	Reset
	// Stall stops delivering bytes until the caller's deadline (or
	// MaxStall) fires; the caller observes a timeout error.
	Stall
	// Corrupt flips one bit of one stream byte.
	Corrupt
	// Latency inserts a one-off delay at a stream offset.
	Latency
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Refuse:
		return "refuse"
	case Reset:
		return "reset"
	case Stall:
		return "stall"
	case Corrupt:
		return "corrupt"
	case Latency:
		return "latency"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Dir is the stream direction a fault fired on, from the wrapped
// connection's point of view.
type Dir uint8

const (
	// Read faults fire on bytes flowing toward the wrapped side.
	Read Dir = iota
	// Write faults fire on bytes flowing away from the wrapped side.
	Write
)

// String implements fmt.Stringer.
func (d Dir) String() string {
	if d == Write {
		return "write"
	}
	return "read"
}

// Fault is one fired (or, in Schedule.Exact, scheduled) fault event.
// Off is the stream byte offset at which it fires: for Corrupt it is the
// index of the flipped byte; for Reset/Stall/Latency the number of bytes
// delivered before the fault; for Refuse it is always 0.
type Fault struct {
	Conn int
	Dir  Dir
	Off  int64
	Kind Kind
}

// String renders the event as one trace line field.
func (f Fault) String() string {
	return fmt.Sprintf("conn=%d dir=%s off=%d kind=%s", f.Conn, f.Dir, f.Off, f.Kind)
}

// Schedule is a composable fault plan. The zero value injects nothing.
type Schedule struct {
	// RefuseProb is the probability a new connection is refused.
	RefuseProb float64
	// ResetEvery is the mean number of stream bytes between injected
	// resets, per direction. 0 disables.
	ResetEvery int64
	// StallEvery is the mean bytes between silent stalls. 0 disables.
	StallEvery int64
	// CorruptEvery is the mean bytes between single-bit flips. 0 disables.
	CorruptEvery int64
	// LatencyEvery is the mean bytes between inserted delays. 0 disables.
	LatencyEvery int64
	// LatencyAmount is the delay per Latency fault. 0 means 1ms.
	LatencyAmount time.Duration
	// BytesPerSec caps stream bandwidth per direction. 0 means unlimited.
	BytesPerSec int64
	// MaxChunk caps single read/write sizes; each chunk's size is drawn
	// deterministically from the stream offset. 0 means unlimited.
	MaxChunk int
	// MaxStall bounds how long a Stall blocks when the caller set no
	// deadline, and caps the wait even when one is set (so chaos sweeps
	// with generous protocol deadlines still finish). 0 means 2s.
	MaxStall time.Duration
	// Exact pins faults to (Conn, Dir, Off) for targeted tests. Refuse
	// entries match on Conn only.
	Exact []Fault
}

// enabled reports whether the schedule can fire anything at all.
func (s Schedule) enabled() bool {
	return s.RefuseProb > 0 || s.ResetEvery > 0 || s.StallEvery > 0 ||
		s.CorruptEvery > 0 || s.LatencyEvery > 0 || s.BytesPerSec > 0 ||
		s.MaxChunk > 0 || len(s.Exact) > 0
}

// Stats counts fired faults.
type Stats struct {
	Conns     int // connections wrapped (refused ones included)
	Refusals  int
	Resets    int
	Stalls    int
	Corrupts  int
	Latencies int
}

// Fatal is the number of fired faults that necessarily fail the
// in-flight operation: refusals, resets, and stalls. Corruption may or
// may not surface as an error (a flipped value byte decodes fine; a
// flipped length prefix does not), and latency never does.
func (s Stats) Fatal() int { return s.Refusals + s.Resets + s.Stalls }

// String renders the counters as one report field.
func (s Stats) String() string {
	return fmt.Sprintf("conns=%d refuse=%d reset=%d stall=%d corrupt=%d latency=%d",
		s.Conns, s.Refusals, s.Resets, s.Stalls, s.Corrupts, s.Latencies)
}

// ErrRefused is returned by a wrapped dial (and observed by peers of a
// refused accept) when a Refuse fault fires.
var ErrRefused = errors.New("faultconn: connection refused (injected)")

// ErrReset is returned from reads and writes when a Reset fault fires.
var ErrReset = errors.New("faultconn: connection reset (injected)")

// Injector owns a Schedule, a base seed, and the trace of fired faults.
// One Injector represents one faulty network: every connection wrapped
// through it gets the next connection index and its own deterministic
// fault substreams.
type Injector struct {
	seed  uint64
	sched Schedule

	mu    sync.Mutex
	conns int
	trace []Fault
	st    Stats
}

// New builds an Injector firing sched's faults from seed's substreams.
func New(seed uint64, sched Schedule) *Injector {
	if sched.LatencyAmount <= 0 {
		sched.LatencyAmount = time.Millisecond
	}
	if sched.MaxStall <= 0 {
		sched.MaxStall = 2 * time.Second
	}
	return &Injector{seed: seed, sched: sched}
}

// Stats returns the fired-fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.st
}

// Trace returns the fired faults in canonical (Conn, Dir, Off, Kind)
// order — byte-identical across runs with the same seed and traffic.
func (in *Injector) Trace() []Fault {
	in.mu.Lock()
	out := append([]Fault(nil), in.trace...)
	in.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Conn != b.Conn {
			return a.Conn < b.Conn
		}
		if a.Dir != b.Dir {
			return a.Dir < b.Dir
		}
		if a.Off != b.Off {
			return a.Off < b.Off
		}
		return a.Kind < b.Kind
	})
	return out
}

// record notes a fired fault in the trace and counters.
func (in *Injector) record(f Fault) {
	in.mu.Lock()
	in.trace = append(in.trace, f)
	switch f.Kind {
	case Refuse:
		in.st.Refusals++
	case Reset:
		in.st.Resets++
	case Stall:
		in.st.Stalls++
	case Corrupt:
		in.st.Corrupts++
	case Latency:
		in.st.Latencies++
	}
	in.mu.Unlock()
}

// refuseStream salts the per-connection substream that decides refusals,
// keeping it independent of the read/write fault streams.
const refuseStream = 0x5EF05E

// mix is one SplitMix64 scramble, used to derive substream seeds.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// connSeed derives the seed of connection id's fault substreams.
func (in *Injector) connSeed(id int) uint64 {
	return mix(in.seed + uint64(id+1)*0x9E3779B97F4A7C15)
}

// nextID reserves the next connection index.
func (in *Injector) nextID() int {
	in.mu.Lock()
	id := in.conns
	in.conns++
	in.st.Conns++
	in.mu.Unlock()
	return id
}

// refused decides (deterministically, per connection index) whether the
// connection is refused outright.
func (in *Injector) refused(id int) bool {
	for _, f := range in.sched.Exact {
		if f.Kind == Refuse && f.Conn == id {
			return true
		}
	}
	if in.sched.RefuseProb <= 0 {
		return false
	}
	rng := xrand.New(mix(in.connSeed(id) ^ refuseStream))
	return rng.Float64() < in.sched.RefuseProb
}

// Wrap wraps an established connection with the next connection index.
// Refusals do not apply (the connection already exists); use Dial or
// Listener for refusal injection.
func (in *Injector) Wrap(c net.Conn) net.Conn {
	if !in.sched.enabled() {
		return c
	}
	return in.wrap(c, in.nextID())
}

// Dial wraps dial: a Refuse fault fails the dial with ErrRefused before
// dial is even invoked; otherwise the established connection is wrapped
// with stream faults.
func (in *Injector) Dial(dial func() (net.Conn, error)) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		id := in.nextID()
		if in.refused(id) {
			in.record(Fault{Conn: id, Kind: Refuse})
			return nil, fmt.Errorf("%w (conn %d)", ErrRefused, id)
		}
		c, err := dial()
		if err != nil {
			return nil, err
		}
		return in.wrap(c, id), nil
	}
}

// Listener wraps ln: a Refuse fault closes the accepted connection
// immediately (the peer sees a reset during its handshake); surviving
// connections carry stream faults.
func (in *Injector) Listener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, in: in}
}

type listener struct {
	net.Listener
	in *Injector
}

// Accept implements net.Listener.
func (l *listener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		id := l.in.nextID()
		if l.in.refused(id) {
			l.in.record(Fault{Conn: id, Kind: Refuse})
			c.Close()
			continue
		}
		return l.in.wrap(c, id), nil
	}
}

// wrap builds the faulty conn for an assigned index.
func (in *Injector) wrap(c net.Conn, id int) net.Conn {
	seed := in.connSeed(id)
	fc := &conn{Conn: c, in: in, id: id}
	fc.rd.init(in, id, Read, mix(seed^1))
	fc.wr.init(in, id, Write, mix(seed^2))
	return fc
}
