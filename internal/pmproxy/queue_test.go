package pmproxy

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// waitQueued spins until the queue holds exactly n waiters.
func waitQueued(t *testing.T, q *wfq, n int) {
	t.Helper()
	for i := 0; ; i++ {
		q.mu.Lock()
		got := len(q.waiters)
		q.mu.Unlock()
		if got == n {
			return
		}
		if i > 1e7 {
			t.Fatalf("queue never reached %d waiters (at %d)", n, got)
		}
		runtime.Gosched()
	}
}

func TestWFQFastPath(t *testing.T) {
	q := newWFQ(2, 0, nil)
	if err := q.acquire(1); err != nil {
		t.Fatal(err)
	}
	if err := q.acquire(2); err != nil {
		t.Fatal(err)
	}
	q.release()
	q.release()
	if err := q.acquire(1); err != nil {
		t.Fatal(err)
	}
	q.release()
}

// TestWFQWeightedDrainOrder pins the fair-queueing discipline: with one
// service slot held, a weight-2 tenant's backlog and a weight-0.8
// tenant's backlog drain interleaved in virtual-finish order — the
// heavier tenant gets proportionally more of the early grants.
func TestWFQWeightedDrainOrder(t *testing.T) {
	weights := map[uint32]float64{1: 2, 2: 0.8}
	q := newWFQ(1, 64, func(id uint32) float64 {
		if w, ok := weights[id]; ok {
			return w
		}
		return 1
	})
	if err := q.acquire(9); err != nil { // park the only slot
		t.Fatal(err)
	}

	var mu sync.Mutex
	var order []uint32
	var wg sync.WaitGroup
	enqueue := func(tenant uint32, n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := q.acquire(tenant); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				order = append(order, tenant)
				mu.Unlock()
				q.release()
			}()
		}
	}
	// Virtual finishes — tenant 1 (w=2): 0.5, 1.0, 1.5, 2.0;
	// tenant 2 (w=0.8): 1.25, 2.5.
	enqueue(1, 4)
	enqueue(2, 2)
	waitQueued(t, q, 6)
	q.release() // hand the slot to the head waiter; the rest chain
	wg.Wait()

	want := []uint32{1, 1, 2, 1, 1, 2}
	if len(order) != len(want) {
		t.Fatalf("drained %d waiters, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("drain order %v, want %v", order, want)
		}
	}
}

// TestWFQQueueBound pins the per-tenant backlog bound: the request that
// finds its tenant's queue full is shed immediately with the typed
// rejection, while other tenants keep queueing.
func TestWFQQueueBound(t *testing.T) {
	q := newWFQ(1, 2, nil)
	if err := q.acquire(0); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := q.acquire(5); err != nil {
				t.Error(err)
				return
			}
			q.release()
		}()
	}
	waitQueued(t, q, 2)
	if err := q.acquire(5); !IsShed(err) {
		t.Fatalf("over-bound acquire: err = %v, want typed shed", err)
	}
	// The bound is per tenant: tenant 6 still has room.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := q.acquire(6); err != nil {
			t.Error(err)
			return
		}
		q.release()
	}()
	waitQueued(t, q, 3)
	q.release()
	wg.Wait()
}

// TestWFQShutdown pins the drain path: queued waiters fail typed, and
// every later acquire fails typed without blocking.
func TestWFQShutdown(t *testing.T) {
	q := newWFQ(1, 64, nil)
	if err := q.acquire(0); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(tenant uint32) {
			errs <- q.acquire(tenant)
		}(uint32(i + 1))
	}
	waitQueued(t, q, 2)
	q.shutdown()
	for i := 0; i < 2; i++ {
		if err := <-errs; !IsShed(err) {
			t.Fatalf("shutdown waiter err = %v, want typed shed", err)
		}
	}
	if err := q.acquire(3); !IsShed(err) {
		t.Fatalf("post-shutdown acquire err = %v, want typed shed", err)
	}
}

// TestWFQConcurrencyOracle stresses acquire/release under -race against
// the slot invariant: never more than slots holders at once, and every
// acquire eventually succeeds (no lost wakeups, no stuck waiters).
func TestWFQConcurrencyOracle(t *testing.T) {
	const slots = 4
	q := newWFQ(slots, 1000, nil)
	var holding atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(tenant uint32) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := q.acquire(tenant); err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				if h := holding.Add(1); h > slots {
					t.Errorf("%d concurrent holders, slots = %d", h, slots)
				}
				holding.Add(-1)
				q.release()
			}
		}(uint32(w % 5))
	}
	wg.Wait()
}
