package pmproxy

import (
	"fmt"
	"sync"
	"time"
)

// ErrCircuitOpen short-circuits a request while the upstream's breaker
// is open: no connection is dialled and no retry loop runs. It wraps
// ErrUpstreamDown so the existing stale-serving fallback applies — an
// open breaker degrades exactly like a down upstream, it just fails
// fast instead of burning the retry budget first.
var ErrCircuitOpen = fmt.Errorf("%w: circuit open", ErrUpstreamDown)

// BreakerConfig tunes the per-upstream circuit breaker.
type BreakerConfig struct {
	// Threshold is how many consecutive upstream failures trip the
	// breaker open. Zero disables the breaker entirely (the default:
	// fault accounting stays exactly as before).
	Threshold int
	// ProbeDelay is how long the breaker stays open before admitting a
	// single half-open probe. The delay doubles (with the proxy's
	// seeded jitter) after each failed probe, capped at ProbeDelayMax.
	// Zero means 100ms.
	ProbeDelay time.Duration
	// ProbeDelayMax caps the doubling probe delay. Zero means 5s.
	ProbeDelayMax time.Duration
}

// Breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

var breakerStateNames = [...]string{"closed", "open", "half-open"}

// breaker is a closed/open/half-open circuit breaker over the upstream.
// While closed it only counts consecutive failures; at Threshold it
// opens and short-circuits every request until the probe delay passes,
// then admits exactly one half-open probe — success closes it, failure
// re-opens it with a doubled (capped, jittered) delay. All timing uses
// the proxy timebase, so the breaker is deterministic under virtual
// time, and the jitter draws come from the proxy's seeded RNG (the
// existing backoff machinery) rather than a second randomness source.
type breaker struct {
	cfg    BreakerConfig
	jitter func(time.Duration) time.Duration

	mu        sync.Mutex
	state     int
	failures  int           // consecutive failures while closed
	delay     time.Duration // current open interval
	openUntil int64         // proxy timebase; probe admitted at/after this
	probing   bool          // a half-open probe is in flight

	opens  int64 // times the breaker tripped open (closed/half-open → open)
	probes int64 // half-open probes admitted

	// transitions records every state change as "from→to" in order, for
	// the state-machine test to pin the exact sequence.
	transitions []string
}

func newBreaker(cfg BreakerConfig, jitter func(time.Duration) time.Duration) *breaker {
	if cfg.ProbeDelay <= 0 {
		cfg.ProbeDelay = 100 * time.Millisecond
	}
	if cfg.ProbeDelayMax <= 0 {
		cfg.ProbeDelayMax = 5 * time.Second
	}
	return &breaker{cfg: cfg, jitter: jitter, delay: cfg.ProbeDelay}
}

// transitionLocked moves the breaker to state to, recording it.
func (b *breaker) transitionLocked(to int) {
	b.transitions = append(b.transitions, breakerStateNames[b.state]+"→"+breakerStateNames[to])
	b.state = to
}

// allow reports whether a request may proceed to the upstream at time
// now. While open it returns ErrCircuitOpen until the probe delay has
// passed, then transitions to half-open and admits one probe; a second
// request during an in-flight probe is short-circuited too.
func (b *breaker) allow(now int64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return nil
	case breakerOpen:
		if now < b.openUntil {
			return ErrCircuitOpen
		}
		b.transitionLocked(breakerHalfOpen)
		b.probing = true
		b.probes++
		return nil
	default: // half-open
		if b.probing {
			return ErrCircuitOpen
		}
		b.probing = true
		b.probes++
		return nil
	}
}

// onSuccess records a successful upstream attempt: a half-open probe
// closes the breaker and resets the failure count and delay.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	if b.state == breakerHalfOpen {
		b.transitionLocked(breakerClosed)
		b.probing = false
		b.delay = b.cfg.ProbeDelay
	}
}

// onFailure records a failed upstream attempt at time now. Reaching
// Threshold consecutive failures while closed trips the breaker; a
// failed half-open probe re-opens it with a doubled, capped, jittered
// delay.
func (b *breaker) onFailure(now int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		b.failures++
		if b.failures >= b.cfg.Threshold {
			b.openLocked(now)
		}
	case breakerHalfOpen:
		// The probe failed: back off harder before the next one.
		b.probing = false
		if b.delay < b.cfg.ProbeDelayMax/2 {
			b.delay *= 2
		} else {
			b.delay = b.cfg.ProbeDelayMax
		}
		b.openLocked(now)
	}
	// Failures while already open (late attempts that were in flight
	// when the breaker tripped) change nothing.
}

// openLocked trips the breaker open at time now.
func (b *breaker) openLocked(now int64) {
	b.transitionLocked(breakerOpen)
	b.opens++
	b.failures = 0
	d := b.delay
	if b.jitter != nil {
		d = b.jitter(d)
	}
	b.openUntil = now + int64(d)
}

// snapshot returns the breaker's counters.
func (b *breaker) snapshot() (opens, probes int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens, b.probes
}

// history returns a copy of the recorded transition sequence.
func (b *breaker) history() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]string(nil), b.transitions...)
}
