package figures

import (
	"strings"
	"testing"
)

var quick = Options{Quick: true}

func TestTableIContainsPaperSpellings(t *testing.T) {
	res, err := TableI(quick)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	res.Table.Write(&b)
	out := b.String()
	for _, want := range []string{
		"pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value:cpu87",
		"power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=0",
		"Summit", "Tellico", "IBM POWER9",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestTableIIContainsPaperSpellings(t *testing.T) {
	res, err := TableII(quick)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	res.Table.Write(&b)
	out := b.String()
	for _, want := range []string{
		"nvml:::Tesla_V100-SXM2-16GB:device_0:power",
		"infiniband:::mlx5_0_1_ext:port_recv_data",
		"infiniband:::mlx5_1_1_ext:port_recv_data",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II missing %q:\n%s", want, out)
		}
	}
}

// The decisive accuracy shapes, asserted on the quick sweeps:
// single-rep small-N errors are large; adaptive errors are small in the
// cached regime; the batched sweep jumps past the Eq. 4 boundary.
func TestFig2Vs3Shapes(t *testing.T) {
	fig2a, err := Fig2a(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig2a.Table.Rows) != len(quick.gemmSizes()) {
		t.Fatalf("fig2a rows = %d", len(fig2a.Table.Rows))
	}
	fig3a, err := Fig3a(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Row 1 is N=256 in the quick sweep: read err column is index 6.
	errOf := func(res *Result, row int) string { return res.Table.Rows[row][6] }
	if errOf(fig2a, 1) <= errOf(fig3a, 1) {
		// String compare is unreliable; this is a smoke check only —
		// the harness tests assert the numeric claim.
		t.Logf("fig2a err %s vs fig3a err %s", errOf(fig2a, 1), errOf(fig3a, 1))
	}
}

func TestFig10RowsAndOrdering(t *testing.T) {
	res, err := Fig10(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 4 {
		t.Fatalf("fig10 rows = %d, want 4", len(res.Table.Rows))
	}
}

func TestProfilesGenerate(t *testing.T) {
	fig11, err := Fig11(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig11.Table.Rows) < 10 {
		t.Errorf("fig11 has only %d samples", len(fig11.Table.Rows))
	}
	phases := map[string]bool{}
	for _, row := range fig11.Table.Rows {
		phases[row[1]] = true
	}
	for _, want := range []string{"H2D-z", "FFT-z(GPU)", "All2All-1", "resort-1(S1CF)"} {
		if !phases[want] {
			t.Errorf("fig11 missing phase %q", want)
		}
	}
	fig12, err := Fig12(quick)
	if err != nil {
		t.Fatal(err)
	}
	phases = map[string]bool{}
	for _, row := range fig12.Table.Rows {
		phases[row[1]] = true
	}
	for _, want := range []string{"VMC-no-drift", "VMC-drift", "DMC"} {
		if !phases[want] {
			t.Errorf("fig12 missing phase %q", want)
		}
	}
}

func TestAllAndByID(t *testing.T) {
	all := All()
	if len(all) != 20 {
		t.Errorf("All() = %d generators, want 20", len(all))
	}
	seen := map[string]bool{}
	for _, g := range all {
		if seen[g.ID] {
			t.Errorf("duplicate id %q", g.ID)
		}
		seen[g.ID] = true
		if _, err := ByID(g.ID); err != nil {
			t.Errorf("ByID(%q): %v", g.ID, err)
		}
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("unknown id accepted")
	}
}

// Every generator must run end to end in quick mode (the smoke test
// behind `cmd/figures -quick -all`).
func TestEveryGeneratorRunsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	for _, g := range All() {
		res, err := g.Gen(quick)
		if err != nil {
			t.Errorf("%s: %v", g.ID, err)
			continue
		}
		if res.Table == nil || len(res.Table.Rows) == 0 {
			t.Errorf("%s: empty table", g.ID)
		}
	}
}
