// Package loadgen drives fetch load against a PCP serving tier (a live
// PMCD daemon or a pmproxy) and reports throughput and latency
// percentiles from log-bucketed histograms.
//
// Two generation disciplines are supported:
//
//   - Closed loop: W workers issue requests back-to-back. Throughput is
//     what the tier sustains at that concurrency; latency excludes
//     queueing the generator itself created.
//   - Open loop: requests arrive at a fixed rate regardless of how fast
//     responses come back. Latency is measured from the scheduled
//     arrival, so a tier that can't keep up shows coordinated-omission-
//     free queueing delay in its tail percentiles.
//
// Each worker records into its own histogram; histograms are merged
// after the run, so percentile counts are exact with no recording
// contention.
//
// In simulated-time mode (Options.Sim) the generator still issues every
// request against the real target, but latencies are drawn from a
// seeded deterministic service-time model and time is virtual: the
// whole report — ops, throughput, every percentile — is bit-identical
// across runs, which makes sweeps diffable and testable. Live mode
// measures wall-clock round trips.
package loadgen

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"papimc/internal/pcp"
	"papimc/internal/stats"
	"papimc/internal/xrand"
)

// Typed option-validation errors, so callers (the workload subsystem,
// cohort expansion) can distinguish a bad rate from a bad seed set with
// errors.Is instead of string matching.
var (
	// ErrRate rejects a zero or negative arrival rate. A negative Rate is
	// rejected in every mode — previously it only failed in open loop and
	// silently rode along in closed loop.
	ErrRate = errors.New("loadgen: rate must be positive")
	// ErrSeedCount rejects a WorkerSeeds slice whose length does not
	// match the worker count.
	ErrSeedCount = errors.New("loadgen: WorkerSeeds length must equal Workers")
	// ErrDuplicateSeed rejects two workers sharing a sim seed: their
	// latency streams would be identical, silently halving the effective
	// sample diversity.
	ErrDuplicateSeed = errors.New("loadgen: duplicate worker seed")
)

// Mode selects the load-generation discipline.
type Mode int

const (
	// Closed loop: each worker issues the next request as soon as the
	// previous one completes.
	Closed Mode = iota
	// Open loop: requests are scheduled at a fixed arrival rate and
	// latency is measured from the scheduled arrival time.
	Open
)

func (m Mode) String() string {
	if m == Open {
		return "open"
	}
	return "closed"
}

// Fetcher is one load-generation connection to the target tier.
type Fetcher interface {
	Fetch(pmids []uint32) (pcp.FetchResult, error)
}

// BatchFetcher is the optional batching side of a Fetcher. When
// Options.Batch > 1 the generator requires it and issues one FetchBatch
// round trip per Batch sets. *pcp.Client, *pcp.Daemon, *pmproxy.Proxy,
// and *cluster.Federator all implement it.
type BatchFetcher interface {
	FetchBatch(sets [][]uint32) ([]pcp.FetchResult, error)
}

// FetchFunc adapts a function to the Fetcher interface (for in-process
// targets like *pcp.Daemon or *pmproxy.Proxy).
type FetchFunc func(pmids []uint32) (pcp.FetchResult, error)

// Fetch implements Fetcher.
func (f FetchFunc) Fetch(pmids []uint32) (pcp.FetchResult, error) { return f(pmids) }

// Factory builds one Fetcher per worker, plus its cleanup. Workers get
// independent connections so the generator exercises real fan-out.
type Factory func() (Fetcher, func() error, error)

// DialFactory dials a PCP-protocol address (daemon or proxy) once per
// worker.
func DialFactory(addr string) Factory {
	return func() (Fetcher, func() error, error) {
		c, err := pcp.Dial(addr)
		if err != nil {
			return nil, nil, err
		}
		return c, c.Close, nil
	}
}

// DialTenantFactory is DialFactory with each worker connection
// identifying itself as the given tenant (carried in-band on Version3
// wires; silently absent against older peers). It is how a multi-tenant
// load run addresses a QoS-enabled pmproxy.
func DialTenantFactory(addr string, tenant uint32) Factory {
	return func() (Fetcher, func() error, error) {
		c, err := pcp.DialTenant(addr, tenant)
		if err != nil {
			return nil, nil, err
		}
		return c, c.Close, nil
	}
}

// SharedFactory serves every worker from one in-process Fetcher (the
// target must be safe for concurrent use, as Daemon and Proxy are).
func SharedFactory(f Fetcher) Factory {
	return func() (Fetcher, func() error, error) {
		return f, func() error { return nil }, nil
	}
}

// PipelinedFactory shares conns pipelined connections across all
// workers, round-robin, so many workers keep requests in flight on few
// sockets — the pipelined wire path's intended shape (DialFactory's
// socket-per-worker measures lockstep fan-out instead). Connections are
// dialed on demand and refcounted: the last worker's cleanup closes
// them, so the same Factory value is reusable across Sweep levels.
func PipelinedFactory(addr string, conns int) Factory {
	if conns <= 0 {
		conns = 1
	}
	var (
		mu      sync.Mutex
		clients []*pcp.Client
		refs    int
		next    int
	)
	return func() (Fetcher, func() error, error) {
		mu.Lock()
		defer mu.Unlock()
		var c *pcp.Client
		if len(clients) < conns {
			cc, err := pcp.Dial(addr)
			if err != nil {
				return nil, nil, err
			}
			clients = append(clients, cc)
			c = cc
		} else {
			c = clients[next%len(clients)]
			next++
		}
		refs++
		cleanup := func() error {
			mu.Lock()
			defer mu.Unlock()
			if refs--; refs > 0 {
				return nil
			}
			var err error
			for _, cl := range clients {
				if e := cl.Close(); e != nil && err == nil {
					err = e
				}
			}
			clients, next = nil, 0
			return err
		}
		return c, cleanup, nil
	}
}

// SimModel is the deterministic service-time model used in
// simulated-time mode: a base latency with bounded uniform jitter and a
// rare heavy tail (the stand-in for resamples, GC pauses and scheduler
// hiccups that make real tails interesting).
type SimModel struct {
	Seed   uint64
	Base   time.Duration // mean service time; 0 means 10µs
	Jitter float64       // relative uniform jitter; 0 means 0.25
}

// service draws the next deterministic service time in nanoseconds.
func (s *SimModel) service(rng *xrand.Source) int64 {
	base := float64(s.Base.Nanoseconds())
	if base <= 0 {
		base = 10_000
	}
	jitter := s.Jitter
	if jitter <= 0 {
		jitter = 0.25
	}
	u := float64(rng.Uint64()>>11) / (1 << 53)
	svc := base * (1 + jitter*(2*u-1))
	// ~1/128 of requests pay an 8–16x tail.
	if rng.Uint64()%128 == 0 {
		svc *= 8 + 8*float64(rng.Uint64()>>11)/(1<<53)
	}
	if svc < 1 {
		svc = 1
	}
	return int64(svc)
}

// Options configures one load-generation run.
type Options struct {
	Mode    Mode
	Workers int      // concurrent workers; 0 means 1
	PMIDs   []uint32 // pmid set each request fetches; nil means {1}
	// Ops is the per-worker request count. Required in simulated-time
	// mode (virtual time has no wall deadline); in live mode it may be 0,
	// in which case workers run until Duration elapses.
	Ops int
	// Duration bounds a live-mode run when Ops is 0. Ignored in
	// simulated-time mode.
	Duration time.Duration
	// Rate is the total open-loop arrival rate in fetched sets/second,
	// split evenly across workers. Required when Mode is Open; must not
	// be negative in any mode. With Batch > 1 the request rate is
	// Rate/Batch, so the offered per-set load stays comparable across
	// batch factors.
	Rate float64
	// Batch, when > 1, bundles that many copies of PMIDs into one
	// FetchBatch round trip per request. The fetchers must implement
	// BatchFetcher. Ops still counts requests per worker; reported ops
	// and throughput count fetched sets; a failed request counts one
	// error.
	Batch int
	// Sim switches to deterministic simulated-time latencies.
	Sim *SimModel
	// WorkerSeeds, when non-nil, gives each sim worker an explicit seed
	// substream (the workload subsystem derives these per cohort via
	// sweep.Seed2). Length must equal the resolved worker count and the
	// seeds must be distinct; nil keeps the default Sim.Seed derivation.
	WorkerSeeds []uint64
}

// Result is one run's report.
type Result struct {
	Mode    Mode
	Workers int
	Ops     int64
	Errors  int64
	// Shed counts requests the tier rejected with a typed overload
	// status (admission control), kept apart from Errors: a shed is the
	// tier working as configured, an error is the tier failing.
	Shed       int64
	Elapsed    time.Duration // virtual in simulated-time mode
	Throughput float64       // ops per (virtual) second
	P50        time.Duration
	P95        time.Duration
	P99        time.Duration
	P999       time.Duration
	Max        time.Duration
}

// workerOut is one worker's private accumulation, merged after the run.
type workerOut struct {
	hist       stats.Histogram
	ops, errs  int64
	shed       int64
	virtualEnd int64 // last virtual completion, simulated-time mode
	err        error
}

// countFailure classifies one failed request: typed overload rejections
// (pmproxy admission sheds, travelling as pcp.StatusOverload over the
// wire or wrapping pcp.ErrOverload in process) count as sheds, anything
// else as an error.
func (o *workerOut) countFailure(err error) {
	if errors.Is(err, pcp.ErrOverload) {
		o.shed++
	} else {
		o.errs++
	}
}

// Run executes one load-generation run at o.Workers concurrency.
func Run(f Factory, o Options) (Result, error) {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if len(o.PMIDs) == 0 {
		o.PMIDs = []uint32{1}
	}
	if o.Rate < 0 || (o.Mode == Open && o.Rate <= 0) {
		return Result{}, fmt.Errorf("%w: got %g in %s loop", ErrRate, o.Rate, o.Mode)
	}
	if o.WorkerSeeds != nil {
		if len(o.WorkerSeeds) != o.Workers {
			return Result{}, fmt.Errorf("%w: %d seeds for %d workers", ErrSeedCount, len(o.WorkerSeeds), o.Workers)
		}
		seen := make(map[uint64]int, len(o.WorkerSeeds))
		for i, s := range o.WorkerSeeds {
			if prev, dup := seen[s]; dup {
				return Result{}, fmt.Errorf("%w: workers %d and %d both use %d", ErrDuplicateSeed, prev, i, s)
			}
			seen[s] = i
		}
	}
	if o.Sim != nil && o.Ops <= 0 {
		return Result{}, fmt.Errorf("loadgen: simulated-time mode requires a per-worker Ops count")
	}
	if o.Sim == nil && o.Ops <= 0 && o.Duration <= 0 {
		o.Duration = time.Second
	}

	outs := make([]workerOut, o.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < o.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := &outs[w]
			fet, cleanup, err := f()
			if err != nil {
				out.err = err
				return
			}
			defer cleanup()
			if o.Sim != nil {
				runSimWorker(fet, o, w, out)
			} else {
				runLiveWorker(fet, o, w, start, out)
			}
		}(w)
	}
	wg.Wait()

	res := Result{Mode: o.Mode, Workers: o.Workers}
	var hist stats.Histogram
	var virtualEnd int64
	for i := range outs {
		if outs[i].err != nil {
			return Result{}, fmt.Errorf("loadgen: worker %d: %w", i, outs[i].err)
		}
		res.Ops += outs[i].ops
		res.Errors += outs[i].errs
		res.Shed += outs[i].shed
		hist.Merge(&outs[i].hist)
		if outs[i].virtualEnd > virtualEnd {
			virtualEnd = outs[i].virtualEnd
		}
	}
	if o.Sim != nil {
		res.Elapsed = time.Duration(virtualEnd)
	} else {
		res.Elapsed = time.Since(start)
	}
	if s := res.Elapsed.Seconds(); s > 0 {
		res.Throughput = float64(res.Ops) / s
	}
	res.P50 = time.Duration(hist.Quantile(0.50))
	res.P95 = time.Duration(hist.Quantile(0.95))
	res.P99 = time.Duration(hist.Quantile(0.99))
	res.P999 = time.Duration(hist.Quantile(0.999))
	res.Max = time.Duration(hist.Max())
	return res, nil
}

// fetchOp resolves one worker's per-request operation: a single fetch,
// or — when Options.Batch > 1 — one FetchBatch round trip carrying
// Batch copies of the PMID set. Returns the operation and the number of
// sets each request fetches.
func fetchOp(fet Fetcher, o Options) (func() error, int, error) {
	if o.Batch <= 1 {
		return func() error {
			_, err := fet.Fetch(o.PMIDs)
			return err
		}, 1, nil
	}
	bf, ok := fet.(BatchFetcher)
	if !ok {
		return nil, 0, fmt.Errorf("loadgen: Batch=%d but fetcher %T does not implement BatchFetcher", o.Batch, fet)
	}
	sets := make([][]uint32, o.Batch)
	for i := range sets {
		sets[i] = o.PMIDs
	}
	return func() error {
		out, err := bf.FetchBatch(sets)
		if err != nil {
			return err
		}
		if len(out) != len(sets) {
			return fmt.Errorf("loadgen: batch returned %d sets, want %d", len(out), len(sets))
		}
		return nil
	}, o.Batch, nil
}

// runSimWorker issues o.Ops real requests and advances a virtual clock
// by deterministic service times. In the open loop, arrivals are spaced
// at the per-worker inter-arrival interval and latency includes the
// virtual queueing delay behind earlier requests on this connection.
func runSimWorker(fet Fetcher, o Options, w int, out *workerOut) {
	seed := o.Sim.Seed ^ (uint64(w+1) * 0x9E3779B97F4A7C15)
	if o.WorkerSeeds != nil {
		seed = o.WorkerSeeds[w]
	}
	rng := xrand.New(seed)
	op, per, err := fetchOp(fet, o)
	if err != nil {
		out.err = err
		return
	}
	var interArrival float64
	if o.Mode == Open {
		interArrival = float64(o.Workers*per) / o.Rate * 1e9
	}
	var busy int64
	for i := 0; i < o.Ops; i++ {
		if err := op(); err != nil {
			out.countFailure(err)
			continue
		}
		svc := o.Sim.service(rng)
		var lat int64
		if o.Mode == Open {
			sched := int64(float64(i) * interArrival)
			begin := sched
			if busy > begin {
				begin = busy
			}
			done := begin + svc
			lat = done - sched
			busy = done
		} else {
			busy += svc
			lat = svc
		}
		out.hist.Record(lat)
		out.ops += int64(per)
	}
	out.virtualEnd = busy
}

// runLiveWorker measures wall-clock round trips until the op count or
// deadline is reached.
func runLiveWorker(fet Fetcher, o Options, w int, start time.Time, out *workerOut) {
	op, per, err := fetchOp(fet, o)
	if err != nil {
		out.err = err
		return
	}
	var interArrival time.Duration
	if o.Mode == Open {
		interArrival = time.Duration(float64(o.Workers*per) / o.Rate * 1e9)
	}
	deadline := start.Add(o.Duration)
	for i := 0; ; i++ {
		if o.Ops > 0 && i >= o.Ops {
			return
		}
		if o.Ops <= 0 && !time.Now().Before(deadline) {
			return
		}
		var ref time.Time
		if o.Mode == Open {
			// Latency is measured from the scheduled arrival, so falling
			// behind shows up as queueing delay (no coordinated omission).
			ref = start.Add(time.Duration(i) * interArrival)
			if d := time.Until(ref); d > 0 {
				time.Sleep(d)
			}
		} else {
			ref = time.Now()
		}
		if err := op(); err != nil {
			out.countFailure(err)
			continue
		}
		out.hist.Record(time.Since(ref).Nanoseconds())
		out.ops += int64(per)
	}
}

// Sweep runs Run once per concurrency level.
func Sweep(f Factory, workers []int, o Options) ([]Result, error) {
	results := make([]Result, 0, len(workers))
	for _, w := range workers {
		o.Workers = w
		r, err := Run(f, o)
		if err != nil {
			return nil, fmt.Errorf("loadgen: workers=%d: %w", w, err)
		}
		results = append(results, r)
	}
	return results, nil
}

// Report renders a sweep as an aligned text table.
func Report(results []Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%7s %5s %9s %6s %6s %12s %9s %9s %9s %9s %9s\n",
		"workers", "mode", "ops", "errs", "sheds", "throughput", "p50", "p95", "p99", "p99.9", "max")
	for _, r := range results {
		fmt.Fprintf(&b, "%7d %5s %9d %6d %6d %9.0f/s %9s %9s %9s %9s %9s\n",
			r.Workers, r.Mode, r.Ops, r.Errors, r.Shed, r.Throughput,
			fmtDur(r.P50), fmtDur(r.P95), fmtDur(r.P99), fmtDur(r.P999), fmtDur(r.Max))
	}
	return b.String()
}

// fmtDur renders a latency with three significant figures, stable across
// magnitudes (time.Duration.String is too chatty for table cells).
func fmtDur(d time.Duration) string {
	ns := float64(d.Nanoseconds())
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3gs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.3gms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.3gµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}
