package ib

import (
	"testing"

	"papimc/internal/mem"
	"papimc/internal/simtime"
)

func TestPortNaming(t *testing.T) {
	// Table II: mlx5_[0|1]_1_ext.
	if got := NewPort(0, 1).Name(); got != "mlx5_0_1_ext" {
		t.Errorf("port name = %q", got)
	}
	if got := NewPort(1, 1).Name(); got != "mlx5_1_1_ext" {
		t.Errorf("port name = %q", got)
	}
}

func TestCountersTickInWords(t *testing.T) {
	p := NewPort(0, 1)
	p.CountRecv(100) // 25 words
	p.CountXmit(7)   // rounds up to 2 words
	r, x := p.Counters()
	if r != 25 || x != 2 {
		t.Errorf("counters = %d/%d, want 25/2", r, x)
	}
}

func TestTransferUpdatesBothEnds(t *testing.T) {
	f := NewFabric()
	src := NewEndpoint(2, nil)
	dst := NewEndpoint(2, nil)
	dur := f.Transfer(src, dst, 1<<20, 0)
	if dur <= 0 {
		t.Error("transfer took no time")
	}
	var xmit, recv uint64
	for _, p := range src.Ports {
		_, x := p.Counters()
		xmit += x
	}
	for _, p := range dst.Ports {
		r, _ := p.Counters()
		recv += r
	}
	if xmit != (1<<20)/WordBytes || recv != (1<<20)/WordBytes {
		t.Errorf("xmit/recv words = %d/%d, want %d", xmit, recv, (1<<20)/WordBytes)
	}
	// Dual-rail striping: both source ports used.
	_, x0 := src.Ports[0].Counters()
	_, x1 := src.Ports[1].Counters()
	if x0 == 0 || x1 == 0 {
		t.Errorf("striping failed: %d/%d", x0, x1)
	}
}

func TestTransferGeneratesDMATraffic(t *testing.T) {
	clock := simtime.NewClock()
	srcMem := mem.NewController(mem.Config{Channels: 8, DisableNoise: true}, clock)
	dstMem := mem.NewController(mem.Config{Channels: 8, DisableNoise: true}, clock)
	f := NewFabric()
	src := NewEndpoint(1, srcMem)
	dst := NewEndpoint(1, dstMem)
	dur := f.Transfer(src, dst, 1<<20, 0)
	at := simtime.Time(0).Add(dur)
	r, w := srcMem.Totals(at)
	if r != 1<<20 || w != 0 {
		t.Errorf("source DMA = %d reads / %d writes, want 1 MiB reads", r, w)
	}
	r, w = dstMem.Totals(at)
	if r != 0 || w != 1<<20 {
		t.Errorf("dest DMA = %d reads / %d writes, want 1 MiB writes", r, w)
	}
}

func TestSelfTransferIsLocalCopy(t *testing.T) {
	clock := simtime.NewClock()
	ctl := mem.NewController(mem.Config{Channels: 8, DisableNoise: true}, clock)
	f := NewFabric()
	e := NewEndpoint(2, ctl)
	dur := f.Transfer(e, e, 4096, 0)
	r, x := e.Ports[0].Counters()
	if r != 0 || x != 0 {
		t.Error("self transfer must not touch the NIC")
	}
	rd, wr := ctl.Totals(simtime.Time(0).Add(dur))
	if rd != 4096 || wr != 4096 {
		t.Errorf("local copy traffic = %d/%d, want 4096/4096", rd, wr)
	}
}

func TestZeroTransfer(t *testing.T) {
	f := NewFabric()
	a, b := NewEndpoint(1, nil), NewEndpoint(1, nil)
	if d := f.Transfer(a, b, 0, 0); d != 0 {
		t.Error("zero-byte transfer should be instantaneous")
	}
}

func TestTransferDurationMatchesBandwidth(t *testing.T) {
	f := NewFabric()
	a, b := NewEndpoint(1, nil), NewEndpoint(1, nil)
	bytes := int64(125 << 20) // 125 MiB over 12.5 GB/s ~ 10.5ms
	d := f.Transfer(a, b, bytes, 0)
	want := simtime.FromSeconds(float64(bytes) / LinkBandwidth)
	if d != want {
		t.Errorf("duration = %v, want %v", d, want)
	}
}
