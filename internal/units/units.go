// Package units provides byte-size and rate constants and formatting
// helpers shared across the simulator and the measurement library.
package units

import "fmt"

// Byte-size constants. The paper consistently uses binary units
// (e.g. the 5 MB L3 slice in Eq. 3 is 5×1024² bytes).
const (
	B   int64 = 1
	KiB int64 = 1024
	MiB int64 = 1024 * KiB
	GiB int64 = 1024 * MiB
)

// Hardware granularities of the modelled IBM POWER9 systems.
const (
	// CacheLineBytes is the full cache-line size.
	CacheLineBytes int64 = 128
	// MemTxBytes is the memory transaction granularity: POWER9 can
	// fetch half cache lines (64 bytes) from memory.
	MemTxBytes int64 = 64
	// DoubleBytes is the size of a double-precision element.
	DoubleBytes int64 = 8
	// ComplexBytes is the size of a double-complex element.
	ComplexBytes int64 = 16
)

// FormatBytes renders n as a human-readable base-2 byte count.
func FormatBytes(n int64) string {
	switch {
	case n >= GiB:
		return fmt.Sprintf("%.2f GiB", float64(n)/float64(GiB))
	case n >= MiB:
		return fmt.Sprintf("%.2f MiB", float64(n)/float64(MiB))
	case n >= KiB:
		return fmt.Sprintf("%.2f KiB", float64(n)/float64(KiB))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// FormatRate renders a bytes-per-second rate.
func FormatRate(bytesPerSec float64) string {
	switch {
	case bytesPerSec >= 1e9:
		return fmt.Sprintf("%.2f GB/s", bytesPerSec/1e9)
	case bytesPerSec >= 1e6:
		return fmt.Sprintf("%.2f MB/s", bytesPerSec/1e6)
	case bytesPerSec >= 1e3:
		return fmt.Sprintf("%.2f kB/s", bytesPerSec/1e3)
	default:
		return fmt.Sprintf("%.0f B/s", bytesPerSec)
	}
}

// RoundUpTx rounds n up to a whole number of memory transactions.
func RoundUpTx(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return (n + MemTxBytes - 1) / MemTxBytes * MemTxBytes
}

// TxCount reports how many 64-byte memory transactions cover n bytes.
func TxCount(n int64) int64 { return RoundUpTx(n) / MemTxBytes }

// LinesCovering reports how many full cache lines cover n bytes.
func LinesCovering(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return (n + CacheLineBytes - 1) / CacheLineBytes
}
