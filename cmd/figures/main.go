// Command figures regenerates every table and figure of the paper into
// an output directory (text table, CSV, and an ASCII chart where the
// original is a plot).
//
// Usage:
//
//	figures [-out DIR] [-quick] [-only id1,id2,...] [-seed N] [-j N]
//
// -j parallelizes the sweeps inside each figure; output is byte-identical
// for every worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"papimc/internal/figures"
)

func main() {
	out := flag.String("out", "out", "output directory")
	quick := flag.Bool("quick", false, "shrink sweeps for a fast pass")
	only := flag.String("only", "", "comma-separated figure ids (default: all)")
	seed := flag.Uint64("seed", 0, "noise seed (0 = default)")
	workers := flag.Int("j", 0, "parallel sweep workers (0 = one per CPU, 1 = serial)")
	flag.Parse()

	opts := figures.Options{Quick: *quick, Seed: *seed, Workers: *workers}
	gens := figures.All()
	if *only != "" {
		gens = nil
		for _, id := range strings.Split(*only, ",") {
			g, err := figures.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			gens = append(gens, g)
		}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, g := range gens {
		res, err := g.Gen(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", g.ID, err)
			os.Exit(1)
		}
		if err := writeResult(*out, res); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", g.ID, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%s)\n", res.ID, res.Title)
	}
}

func writeResult(dir string, res *figures.Result) error {
	txt, err := os.Create(filepath.Join(dir, res.ID+".txt"))
	if err != nil {
		return err
	}
	defer txt.Close()
	fmt.Fprintf(txt, "%s\n\n", res.Title)
	if err := res.Table.Write(txt); err != nil {
		return err
	}
	if res.Chart != nil {
		fmt.Fprintln(txt)
		if err := res.Chart.Write(txt); err != nil {
			return err
		}
	}
	csv, err := os.Create(filepath.Join(dir, res.ID+".csv"))
	if err != nil {
		return err
	}
	defer csv.Close()
	return res.Table.WriteCSV(csv)
}
