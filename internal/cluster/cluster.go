// Package cluster implements the federated metric cluster: many
// simulated nodes — each its own pcp.Daemon with distinct architecture
// parameters and noise seed — behind a hierarchical aggregation tree of
// federators (the pmproxy-federation analogue of PCP's pmproxy chains).
//
// The tree is leaf → zone → root with a configurable fan-out. Each
// federator owns one pmproxy.Upstream per child edge, so every fetch is
// a scatter-gather with per-child deadlines, hedged retries against
// slow subtrees, and per-edge counters. Results are partial by design:
// when k of N nodes are down, a root query still answers from the
// survivors and names exactly the missing nodes in a typed
// *pcp.PartialError that travels through the PDU layer
// (PDUFetchPartialResp) and up through metricql.
//
// Namespace convention: a federator qualifies each leaf's metrics with
// the node name — node003:mem.read_bw — so the node becomes a label
// dimension ("sum(mem.read_bw) by (node)") instead of a separate
// connection.
//
// Every node's metrics are self-certifying: the value of metric pmid on
// a node with noise seed s at daemon time t is MetricValue(s, pmid, t),
// a full-avalanche mix. A consistent cluster snapshot is therefore
// checkable by recomputation: hold the shared simulated clock still,
// force every daemon past its sampling interval, and every value served
// anywhere in the tree must certify against the single virtual
// timestamp (built on the daemon's atomic snapshot identity — a fetch
// is never torn across samples, so one wrong-time value means one
// inconsistent node, not a torn buffer).
package cluster

// Gamma constants decorrelating the seed, pmid and timestamp inputs of
// the value model (SplitMix64's increment and two odd mixers).
const (
	certGamma = 0x9E3779B97F4A7C15
	seedGamma = 0xBF58476D1CE4E5B9
)

// mix is one SplitMix64 scramble.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// MetricValue is the self-certifying value model: what metric pmid on
// the node with noise seed seed must read at daemon time ts. Full
// avalanche on every input, so a stale, torn, or wrong-node value
// disagrees with its claimed (node, pmid, timestamp) binding in ~half
// its bits and is caught by recomputation.
func MetricValue(seed uint64, pmid uint32, ts int64) uint64 {
	return mix(mix(seed*seedGamma) ^ (uint64(ts)*certGamma + uint64(pmid)))
}
