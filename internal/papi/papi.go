// Package papi is the heart of this reproduction: a PAPI-like
// performance-measurement library with the multi-component architecture
// the paper demonstrates. Components plug diverse counter sources —
// direct nest (perf_uncore) access, the PCP daemon, GPU power (NVML),
// InfiniBand port counters — behind one homogeneous EventSet API, so an
// application can monitor all of them simultaneously with a single
// instrumentation layer (Figs. 11 and 12).
//
// Event names follow PAPI's convention: "component:::native_event" for
// non-CPU components (pcp:::…, nvml:::…, infiniband:::…) and bare native
// names for the default CPU/uncore component (power9_nest_mba0::…).
package papi

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"papimc/internal/simtime"
)

// Errors returned by the library; they mirror PAPI's error codes.
var (
	ErrNoComponent    = errors.New("papi: no such component")
	ErrNoEvent        = errors.New("papi: no such event")
	ErrIsRunning      = errors.New("papi: event set is running")
	ErrNotRunning     = errors.New("papi: event set is not running")
	ErrEmptyEventSet  = errors.New("papi: event set is empty")
	ErrPermission     = errors.New("papi: permission denied")
	ErrDupeComponent  = errors.New("papi: component already registered")
	ErrClosedEventSet = errors.New("papi: event set is closed")
)

// EventInfo describes one available native event.
type EventInfo struct {
	// Name is the fully qualified name as the user writes it.
	Name        string
	Description string
	Units       string
	// Instant marks level-style events (e.g. GPU power in mW) that are
	// reported as-is rather than as a delta from Start.
	Instant bool
}

// Component is a pluggable source of hardware counters.
type Component interface {
	// Name returns the component identifier used in event prefixes
	// ("pcp", "nvml", "infiniband"); the default CPU/uncore component
	// returns "perf_uncore".
	Name() string
	// ListEvents enumerates the available native events.
	ListEvents() ([]EventInfo, error)
	// Describe resolves one native event name.
	Describe(native string) (EventInfo, error)
	// NewCounters instantiates counters for the given native events.
	NewCounters(natives []string) (Counters, error)
}

// Counters is an instantiated group of native counters.
type Counters interface {
	// ReadAt returns the raw (monotonic, for non-instant events) values
	// at simulated time t, in the order the events were passed to
	// NewCounters. The returned slice is only valid until the next
	// ReadAt: implementations may reuse its backing array, and callers
	// copy out what they retain.
	ReadAt(t simtime.Time) ([]uint64, error)
	Close() error
}

// defaultComponent is the component used for event names without a
// ":::" prefix, like PAPI's CPU component.
const defaultComponent = "perf_uncore"

// Library is the component registry plus the simulated clock that stands
// in for real time.
type Library struct {
	clock *simtime.Clock
	comps map[string]Component
	order []string
}

// NewLibrary builds an empty library reading time from clock.
func NewLibrary(clock *simtime.Clock) *Library {
	return &Library{clock: clock, comps: make(map[string]Component)}
}

// Clock returns the library's simulated clock.
func (l *Library) Clock() *simtime.Clock { return l.clock }

// Register adds a component. Component names must be unique.
func (l *Library) Register(c Component) error {
	name := c.Name()
	if _, dup := l.comps[name]; dup {
		return fmt.Errorf("%w: %q", ErrDupeComponent, name)
	}
	l.comps[name] = c
	l.order = append(l.order, name)
	return nil
}

// Components returns the registered components in registration order.
func (l *Library) Components() []Component {
	out := make([]Component, len(l.order))
	for i, n := range l.order {
		out[i] = l.comps[n]
	}
	return out
}

// Component looks up a component by name.
func (l *Library) Component(name string) (Component, error) {
	c, ok := l.comps[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoComponent, name)
	}
	return c, nil
}

// SplitEventName splits a fully qualified event name into component and
// native parts. Names without ":::" belong to the default (CPU/uncore)
// component.
func SplitEventName(full string) (component, native string) {
	if comp, nat, ok := strings.Cut(full, ":::"); ok {
		return comp, nat
	}
	return defaultComponent, full
}

// resolve maps a fully qualified event name to its component and info.
func (l *Library) resolve(full string) (Component, EventInfo, error) {
	compName, native := SplitEventName(full)
	c, ok := l.comps[compName]
	if !ok {
		return nil, EventInfo{}, fmt.Errorf("%w: %q (for event %q)", ErrNoComponent, compName, full)
	}
	info, err := c.Describe(native)
	if err != nil {
		return nil, EventInfo{}, fmt.Errorf("papi: event %q: %w", full, err)
	}
	return c, info, nil
}

// DescribeEvent resolves a fully qualified event name.
func (l *Library) DescribeEvent(full string) (EventInfo, error) {
	_, info, err := l.resolve(full)
	return info, err
}

// AllEvents lists every event of every component, qualified with the
// component prefix, sorted by name.
func (l *Library) AllEvents() ([]EventInfo, error) {
	var out []EventInfo
	for _, name := range l.order {
		events, err := l.comps[name].ListEvents()
		if err != nil {
			return nil, fmt.Errorf("papi: listing %s: %w", name, err)
		}
		for _, e := range events {
			q := e
			if name != defaultComponent {
				q.Name = name + ":::" + e.Name
			}
			out = append(out, q)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}
