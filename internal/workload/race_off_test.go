//go:build !race

package workload

// raceEnabled reports whether the race detector is compiled in; the
// million-client simulation skips under it (the detector's shadow memory
// multiplies the event loop's footprint without adding coverage — the
// virtual-time path is single-goroutine).
const raceEnabled = false
