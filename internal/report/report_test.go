package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := &Table{Headers: []string{"N", "reads", "err"}}
	tb.AddRow(128, int64(393216), 0.031)
	tb.AddRow(4096, int64(402653184), 1.5e-7)
	var b strings.Builder
	if err := tb.Write(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "reads") || !strings.Contains(lines[2], "393216") {
		t.Errorf("table content wrong:\n%s", out)
	}
	if !strings.Contains(lines[3], "1.500e-07") {
		t.Errorf("float formatting wrong:\n%s", out)
	}
}

func TestCSVQuoting(t *testing.T) {
	tb := &Table{Headers: []string{"name", "value"}}
	tb.AddRow("plain", 1)
	tb.AddRow("with,comma", 2)
	tb.AddRow(`with"quote`, 3)
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"with,comma",2`) {
		t.Errorf("comma cell not quoted:\n%s", out)
	}
	if !strings.Contains(out, `"with""quote",3`) {
		t.Errorf("quote cell not escaped:\n%s", out)
	}
	if !strings.HasPrefix(out, "name,value\n") {
		t.Errorf("header wrong:\n%s", out)
	}
}

func TestChartRendersAllSeries(t *testing.T) {
	c := &Chart{
		Title: "test", XLabel: "N", YLabel: "bytes",
		LogX: true, LogY: true, Width: 40, Height: 10,
	}
	c.Add(Series{Name: "measured", X: []float64{128, 256, 512}, Y: []float64{1e6, 4e6, 16e6}})
	c.Add(Series{Name: "expected", X: []float64{128, 256, 512}, Y: []float64{1.1e6, 4.2e6, 15e6}})
	var b strings.Builder
	if err := c.Write(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("series markers missing:\n%s", out)
	}
	if !strings.Contains(out, "measured") || !strings.Contains(out, "expected") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "(log)") {
		t.Errorf("log axis note missing:\n%s", out)
	}
}

func TestChartEmptyData(t *testing.T) {
	c := &Chart{Title: "empty"}
	var b strings.Builder
	if err := c.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no data") {
		t.Errorf("empty chart output: %q", b.String())
	}
}

func TestChartDegenerateRanges(t *testing.T) {
	c := &Chart{Width: 10, Height: 5}
	c.Add(Series{Name: "point", X: []float64{5}, Y: []float64{7}})
	var b strings.Builder
	if err := c.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "*") {
		t.Error("single point not rendered")
	}
}
