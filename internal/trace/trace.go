// Package trace defines the memory-access event vocabulary shared by the
// loop-nest executor and the cache simulator, plus a simple address-space
// allocator that hands out disjoint, aligned array regions.
package trace

import "fmt"

// Kind classifies a memory access.
type Kind uint8

const (
	// Load is a demand read by the core.
	Load Kind = iota
	// Store is a write by the core.
	Store
	// PrefetchStore is a dcbtst-style software prefetch: it pulls the
	// target line into the cache in anticipation of a store
	// (the effect of GCC's -fprefetch-loop-arrays on POWER9).
	PrefetchStore
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	case PrefetchStore:
		return "prefetch-store"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Access is a single memory reference issued by a core.
type Access struct {
	Addr int64 // byte address
	Size int64 // bytes, > 0
	Kind Kind
}

// Sink consumes a stream of accesses (typically a cache hierarchy).
type Sink interface {
	Access(core int, a Access)
}

// Region is an allocated array in the simulated address space.
type Region struct {
	Name string
	Base int64
	Size int64
}

// Addr returns the address of byte offset off within the region.
// It panics if off is out of bounds — a bug in a kernel descriptor.
func (r Region) Addr(off int64) int64 {
	if off < 0 || off >= r.Size {
		panic(fmt.Sprintf("trace: offset %d out of bounds for region %s (size %d)", off, r.Name, r.Size))
	}
	return r.Base + off
}

// End returns the first address past the region.
func (r Region) End() int64 { return r.Base + r.Size }

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr int64) bool {
	return addr >= r.Base && addr < r.End()
}

// regionAlign keeps every array page-aligned so no two arrays share a
// cache line and per-array traffic is attributable.
const regionAlign = 4096

// AddressSpace is a bump allocator for simulated arrays. The zero value
// allocates starting at one page to keep address 0 invalid.
type AddressSpace struct {
	next int64
}

// NewAddressSpace returns an empty address space.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{next: regionAlign}
}

// Alloc reserves size bytes (rounded up to the alignment) and returns the
// region. It panics on non-positive sizes.
func (s *AddressSpace) Alloc(name string, size int64) Region {
	if size <= 0 {
		panic(fmt.Sprintf("trace: Alloc(%q, %d): non-positive size", name, size))
	}
	if s.next == 0 {
		s.next = regionAlign
	}
	r := Region{Name: name, Base: s.next, Size: size}
	s.next += (size + regionAlign - 1) / regionAlign * regionAlign
	return r
}

// Used returns the total reserved bytes (including alignment padding).
func (s *AddressSpace) Used() int64 {
	if s.next == 0 {
		return 0
	}
	return s.next - regionAlign
}
