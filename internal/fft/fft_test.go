package fft

import (
	"math"
	"math/cmplx"
	"testing"

	"papimc/internal/ib"
	"papimc/internal/mpi"
	"papimc/internal/simtime"
	"papimc/internal/xrand"
)

func randComplex(rng *xrand.Source, n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return out
}

func maxAbsDiff(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// Forward must match the naive DFT for every small length, including
// primes (Bluestein path) and powers of two (radix-2 path).
func TestForwardMatchesNaiveDFT(t *testing.T) {
	rng := xrand.New(1)
	for n := 1; n <= 40; n++ {
		x := randComplex(rng, n)
		want := NaiveDFT(x)
		got := append([]complex128(nil), x...)
		Forward(got)
		if d := maxAbsDiff(got, want); d > 1e-9 {
			t.Errorf("N=%d: max diff %g", n, d)
		}
	}
}

// The paper's actual problem sizes factor as 2^a·3^b·7: exercise a
// representative non-power-of-two length against the naive DFT.
func TestForwardPaperLikeSize(t *testing.T) {
	rng := xrand.New(2)
	const n = 336 // 1344/4: same factor structure (2^4·3·7)
	x := randComplex(rng, n)
	want := NaiveDFT(x)
	got := append([]complex128(nil), x...)
	Forward(got)
	if d := maxAbsDiff(got, want); d > 1e-8 {
		t.Errorf("N=%d: max diff %g", n, d)
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := xrand.New(3)
	for _, n := range []int{1, 2, 7, 16, 21, 64, 100, 1344} {
		x := randComplex(rng, n)
		y := append([]complex128(nil), x...)
		Forward(y)
		Inverse(y)
		if d := maxAbsDiff(x, y); d > 1e-9 {
			t.Errorf("N=%d: round trip diff %g", n, d)
		}
	}
}

// Parseval: Σ|x|² = (1/N)·Σ|X|².
func TestParseval(t *testing.T) {
	rng := xrand.New(4)
	for _, n := range []int{8, 12, 31, 128} {
		x := randComplex(rng, n)
		var timeE float64
		for _, v := range x {
			timeE += real(v)*real(v) + imag(v)*imag(v)
		}
		Forward(x)
		var freqE float64
		for _, v := range x {
			freqE += real(v)*real(v) + imag(v)*imag(v)
		}
		freqE /= float64(n)
		if math.Abs(timeE-freqE) > 1e-9*timeE {
			t.Errorf("N=%d: Parseval violated: %v vs %v", n, timeE, freqE)
		}
	}
}

// A pure tone transforms to a single spike.
func TestForwardPureTone(t *testing.T) {
	const n, freq = 64, 5
	x := make([]complex128, n)
	for k := range x {
		phi := 2 * math.Pi * freq * float64(k) / n
		x[k] = complex(math.Cos(phi), math.Sin(phi))
	}
	Forward(x)
	for j := range x {
		want := complex(0, 0)
		if j == freq {
			want = complex(n, 0)
		}
		if cmplx.Abs(x[j]-want) > 1e-9 {
			t.Errorf("bin %d = %v, want %v", j, x[j], want)
		}
	}
}

func TestForwardBatch(t *testing.T) {
	rng := xrand.New(5)
	const n, rows = 16, 4
	data := randComplex(rng, n*rows)
	want := make([]complex128, 0, n*rows)
	for r := 0; r < rows; r++ {
		row := append([]complex128(nil), data[r*n:(r+1)*n]...)
		Forward(row)
		want = append(want, row...)
	}
	ForwardBatch(data, n)
	if d := maxAbsDiff(data, want); d > 1e-12 {
		t.Errorf("batch differs from per-row: %g", d)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on non-multiple batch")
		}
	}()
	ForwardBatch(make([]complex128, 10), 3)
}

// --- re-sort routines ----------------------------------------------------

func TestGridGeometry(t *testing.T) {
	g := Grid{N: 8, R: 2, C: 4}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Planes() != 4 || g.Rows() != 2 || g.Cols() != 8 {
		t.Errorf("local extents %d/%d/%d", g.Planes(), g.Rows(), g.Cols())
	}
	if g.LocalElems()*g.Ranks() != 8*8*8 {
		t.Error("slabs do not tile the global array")
	}
	i, j := g.RankCoords(g.RankID(1, 3))
	if i != 1 || j != 3 {
		t.Errorf("coords round trip = (%d,%d)", i, j)
	}
	if err := (Grid{N: 10, R: 3, C: 2}).Validate(); err == nil {
		t.Error("expected divisibility error")
	}
}

// Colwise and planewise variants must produce identical chunks (the
// paper: "the structure and performance of S1PF and S2PF are similar to
// those of S1CF and S2CF" — the data is the same).
func TestColwisePlanewiseEquivalence(t *testing.T) {
	g := Grid{N: 12, R: 2, C: 3}
	rng := xrand.New(6)
	local := randComplex(rng, g.LocalElems())
	c1, c2 := g.S1CF(local), g.S1PF(local)
	for j := range c1 {
		if d := maxAbsDiff(c1[j], c2[j]); d != 0 {
			t.Errorf("S1 chunk %d differs between variants", j)
		}
	}
	mid := randComplex(rng, g.Planes()*(g.N/g.C)*g.N)
	s1, s2 := g.S2CF(mid), g.S2PF(mid)
	for i := range s1 {
		if d := maxAbsDiff(s1[i], s2[i]); d != 0 {
			t.Errorf("S2 chunk %d differs between variants", i)
		}
	}
}

// Packing then unpacking on a single rank must be a permutation that
// the unpack inverts correctly: verify via a 1×1 grid identity and via
// content preservation on larger grids.
func TestPackUnpackPreservesContent(t *testing.T) {
	g := Grid{N: 8, R: 2, C: 4}
	rng := xrand.New(7)
	local := randComplex(rng, g.LocalElems())
	sum := func(xs []complex128) complex128 {
		var s complex128
		for _, v := range xs {
			s += v
		}
		return s
	}
	chunks := g.S1CF(local)
	var total complex128
	n := 0
	for _, ch := range chunks {
		total += sum(ch)
		n += len(ch)
	}
	if n != len(local) {
		t.Fatalf("chunks hold %d elements, want %d", n, len(local))
	}
	if cmplx.Abs(total-sum(local)) > 1e-9 {
		t.Error("S1CF lost data")
	}
}

// --- distributed pipeline --------------------------------------------------

// distributedVsLocal runs the distributed 3D FFT on the given grid and
// compares every output element against the local reference transform.
func distributedVsLocal(t *testing.T, g Grid) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(uint64(g.N*100 + g.R*10 + g.C))
	global := randComplex(rng, g.N*g.N*g.N)
	want := append([]complex128(nil), global...)
	FFT3D(want, g.N)

	comm := mpi.New(g.Ranks(), nil, nil, nil)
	results := make([][]complex128, g.Ranks())
	comm.Run(func(r *mpi.Rank) {
		i, j := g.RankCoords(r.ID())
		local := LocalSlab(g, global, i, j)
		results[r.ID()] = Distributed3D(g, r, local)
	})

	worst := 0.0
	for id, out := range results {
		i, j := g.RankCoords(id)
		for off, v := range out {
			x, y, z := OutputIndex(g, i, j, off)
			ref := want[(x*g.N+y)*g.N+z]
			if d := cmplx.Abs(v - ref); d > worst {
				worst = d
			}
		}
	}
	if worst > 1e-8 {
		t.Errorf("grid %dx%d N=%d: max diff vs local 3D FFT = %g", g.R, g.C, g.N, worst)
	}
}

func TestDistributed3DMatchesLocal2x4(t *testing.T) {
	distributedVsLocal(t, Grid{N: 8, R: 2, C: 4})
}

func TestDistributed3DMatchesLocal2x2(t *testing.T) {
	distributedVsLocal(t, Grid{N: 12, R: 2, C: 2})
}

func TestDistributed3DMatchesLocal4x8(t *testing.T) {
	if testing.Short() {
		t.Skip("32-rank functional test")
	}
	// The Fig. 10 grid shape at a reduced size.
	distributedVsLocal(t, Grid{N: 16, R: 4, C: 8})
}

func TestDistributed3DMatchesLocal1x1(t *testing.T) {
	distributedVsLocal(t, Grid{N: 6, R: 1, C: 1})
}

func TestDistributed3DNonPowerOfTwo(t *testing.T) {
	// Same prime structure as the paper's N=1344 (2^a·3·7).
	distributedVsLocal(t, Grid{N: 21, R: 1, C: 1})
}

// Full-stack integration: the distributed FFT over a fabric-backed
// communicator must stay numerically correct AND drive the InfiniBand
// port counters with exactly the all-to-all wire bytes.
func TestDistributed3DOverCountedFabric(t *testing.T) {
	g := Grid{N: 8, R: 2, C: 4}
	clock := simtime.NewClock()
	fabric := ib.NewFabric()
	eps := make([]*ib.Endpoint, g.Ranks())
	for i := range eps {
		eps[i] = ib.NewEndpoint(1, nil)
	}
	rng := xrand.New(9)
	global := randComplex(rng, g.N*g.N*g.N)
	want := append([]complex128(nil), global...)
	FFT3D(want, g.N)

	comm := mpi.New(g.Ranks(), fabric, eps, clock)
	results := make([][]complex128, g.Ranks())
	comm.Run(func(r *mpi.Rank) {
		i, j := g.RankCoords(r.ID())
		results[r.ID()] = Distributed3D(g, r, LocalSlab(g, global, i, j))
	})
	worst := 0.0
	for id, out := range results {
		i, j := g.RankCoords(id)
		for off, v := range out {
			x, y, z := OutputIndex(g, i, j, off)
			if d := cmplx.Abs(v - want[(x*g.N+y)*g.N+z]); d > worst {
				worst = d
			}
		}
	}
	if worst > 1e-9 {
		t.Errorf("numeric error over fabric = %g", worst)
	}
	// Wire accounting: each rank sends (C-1)/C of its slab in exchange
	// 1 and (R-1)/R in exchange 2, in 16-byte elements → 4-byte words.
	slabBytes := int64(g.LocalElems()) * 16
	wantWords := uint64((slabBytes*int64(g.C-1)/int64(g.C) + slabBytes*int64(g.R-1)/int64(g.R)) / ib.WordBytes)
	for id, ep := range eps {
		_, xmit := ep.Ports[0].Counters()
		if xmit != wantWords {
			t.Errorf("rank %d xmit = %d words, want %d", id, xmit, wantWords)
		}
	}
}
