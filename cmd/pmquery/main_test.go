package main

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"papimc/internal/archive"
	"papimc/internal/pcp"
	"papimc/internal/testutil"
)

var update = flag.Bool("update", false, "rewrite golden files")

// checkGolden compares got against testdata/<name> (rewriting it under
// -update).
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run 'go test ./cmd/pmquery -update' to create goldens)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got\n%s--- want\n%s", path, got, want)
	}
}

// writeTestArchive records a deterministic archive: three counters
// advancing linearly at different slopes every 100ms, so rate() is
// constant and every CSV row is predictable.
func writeTestArchive(t *testing.T) string {
	t.Helper()
	a, err := archive.New([]pcp.NameEntry{
		{PMID: 1, Name: "arch.metric.a"},
		{PMID: 2, Name: "arch.metric.b"},
		{PMID: 3, Name: "arch.metric.c"},
	}, archive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const step = int64(100 * time.Millisecond)
	for i := int64(0); i < 8; i++ {
		row := archive.Sample{
			Timestamp: i * step,
			Values:    []uint64{uint64(i) * 1000, uint64(i) * 500, 7},
		}
		if err := a.AppendSample(row); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "run.pmlog")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestArchiveModeGolden replays a recorded archive through the full CSV
// path: header derivation, glob expansion, rate over counters.
func TestArchiveModeGolden(t *testing.T) {
	path := writeTestArchive(t)
	var out bytes.Buffer
	err := runArchive(path, 0, 100*time.Millisecond,
		[]string{"rate(arch.metric.a)", "sum(rate(arch.metric.*))", "arch.metric.c"},
		nil, 1, 0, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "archive.csv", out.Bytes())
}

// TestArchiveResolutionPinned replays an archive through a rollup tier:
// with -resolution the CSV rows sit on bucket last-sample timestamps and
// rates span bucket aggregates, never touching the raw read path.
func TestArchiveResolutionPinned(t *testing.T) {
	a, err := archive.New([]pcp.NameEntry{
		{PMID: 1, Name: "arch.metric.a"},
	}, archive.Options{Rollups: []int64{int64(200 * time.Millisecond)}})
	if err != nil {
		t.Fatal(err)
	}
	const step = int64(100 * time.Millisecond)
	for i := int64(0); i < 8; i++ {
		if err := a.AppendSample(archive.Sample{Timestamp: i * step, Values: []uint64{uint64(i) * 1000}}); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "rollup.pmlog")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	err = runArchive(path, 200*time.Millisecond, 200*time.Millisecond,
		[]string{"rate(arch.metric.a)"}, nil, 1, 0, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// Buckets end at 100/300/500/700ms holding a = 1000/3000/5000/7000;
	// the 200ms replay steps see consecutive buckets, so every printed
	// rate after the baseline is 2000 counts per 200ms = 10000/s.
	want := "time,arch.metric.a\n0.100,0\n0.300,10000\n0.500,10000\n"
	if out.String() != want {
		t.Errorf("pinned-resolution CSV:\n%s--- want\n%s", out.String(), want)
	}

	// A resolution the archive has no tier for is an explicit error.
	if err := runArchive(path, time.Hour, 200*time.Millisecond,
		[]string{"rate(arch.metric.a)"}, nil, 1, 0, io.Discard, io.Discard); err == nil {
		t.Error("missing tier accepted")
	}
}

// TestLiveModeGolden samples a live daemon serving fixed synthetic
// values; with the simulated clock parked at zero every row is
// deterministic.
func TestLiveModeGolden(t *testing.T) {
	_, addr := testutil.StartSyntheticDaemon(t, 4)
	var out bytes.Buffer
	err := runLive(addr, time.Millisecond, 3, false,
		[]string{"load.metric.2", "sum(load.metric.*)"},
		nil, 1, 0, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "live.csv", out.Bytes())
}

// TestArchiveRuleFires drives a pmie-style rule over the replay and
// asserts the firing reaches the alert stream, not the CSV.
func TestArchiveRuleFires(t *testing.T) {
	path := writeTestArchive(t)
	var out, alerts bytes.Buffer
	err := runArchive(path, 0, 100*time.Millisecond,
		[]string{"rate(arch.metric.a)"},
		[]string{"rate(arch.metric.a) > 5000"}, 1, 0, &out, &alerts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(alerts.Bytes(), []byte("# ALERT")) {
		t.Errorf("rule never fired; alert stream: %q", alerts.String())
	}
	if bytes.Contains(out.Bytes(), []byte("# ALERT")) {
		t.Error("alert leaked into the CSV stream")
	}
}
