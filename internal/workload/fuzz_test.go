package workload

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// fuzzTraceBytes records a small deterministic run to seed the corpus.
func fuzzTraceBytes(tb testing.TB, mult float64) []byte {
	tb.Helper()
	spec := &Spec{
		Name: "fuzz", Seed: 5, Duration: 2e9,
		Server: ServerSpec{Servers: 2, Base: 1e6, SizeRef: 4},
		Cohorts: []CohortSpec{
			{Name: "a", Clients: 20, Rate: 40, Size: SizeSpec{Min: 1, Alpha: 1.1, Max: 32}},
			{Name: "b", Clients: 5, Rate: 10},
		},
	}
	var tr Trace
	if _, err := Run(spec, Options{Mult: mult, Record: &tr}); err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadTrace hammers the varint-delta trace decoder with hostile
// input, mirroring archive.FuzzReadArchive. Two properties:
//
//  1. Totality: ReadTrace never panics or over-allocates — any input is
//     decoded or rejected with an error wrapping ErrTrace.
//  2. Soundness: an accepted input yields a well-formed trace —
//     nondecreasing timestamps, in-range fields — that round-trips
//     through WriteTo/ReadTrace to identical rows.
func FuzzReadTrace(f *testing.F) {
	valid := fuzzTraceBytes(f, 1)
	f.Add(valid)
	f.Add(fuzzTraceBytes(f, 0.25))
	// Truncations at structurally interesting places.
	for _, n := range []int{0, 3, len(traceMagic), len(traceMagic) + 2, len(valid) / 2, len(valid) - 1} {
		f.Add(valid[:n])
	}
	// Single-bit flips in the header, cohort table, and delta stream.
	for _, off := range []int{1, len(traceMagic), len(traceMagic) + 4, len(valid) / 2, len(valid) - 2} {
		b := append([]byte(nil), valid...)
		b[off] ^= 0x10
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrTrace) {
				t.Fatalf("decode error %v does not wrap ErrTrace", err)
			}
			return
		}
		prev := int64(0)
		for i := range tr.Rows {
			r := &tr.Rows[i]
			if r.T < prev {
				t.Fatalf("accepted trace has decreasing timestamp at row %d", i)
			}
			prev = r.T
			if int(r.Cohort) >= len(tr.Cohorts) || r.Class >= NumClasses || r.Status > 1 {
				t.Fatalf("accepted trace has out-of-range row %d: %+v", i, r)
			}
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			t.Fatalf("accepted trace fails to re-encode: %v", err)
		}
		again, err := ReadTrace(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded trace rejected: %v", err)
		}
		if !reflect.DeepEqual(tr.Rows, again.Rows) || !reflect.DeepEqual(tr.Cohorts, again.Cohorts) {
			t.Fatal("round trip changed the trace")
		}
	})
}
