package archive

import (
	"fmt"

	"papimc/internal/pcp"
	"papimc/internal/simtime"
)

// Replay serves an archive as if it were a live PMCD daemon: Fetch
// answers with the newest recorded sample at or before the replay
// clock's current time, exactly the row the daemon's sampling cache
// would have held then. It implements the pcpcomp Source interface, so
// a profile can be recomputed offline from a recording.
type Replay struct {
	arch  *Archive
	clock *simtime.Clock
}

// NewReplay builds a replay source reading time from clock.
func NewReplay(a *Archive, clock *simtime.Clock) *Replay {
	return &Replay{arch: a, clock: clock}
}

// Names returns the recording's name table.
func (r *Replay) Names() ([]pcp.NameEntry, error) { return r.arch.Names(), nil }

// Lookup resolves a name against the recording's name table.
func (r *Replay) Lookup(name string) (uint32, error) { return r.arch.Lookup(name) }

// Fetch projects the requested PMIDs out of the sample a live daemon
// would have served at the clock's current time. Before the first
// recorded sample it serves that first sample (the daemon would have
// sampled on first contact); PMIDs outside the schema get
// StatusNoSuchPMID, matching daemon behaviour for unknown PMIDs.
func (r *Replay) Fetch(pmids []uint32) (pcp.FetchResult, error) {
	now := int64(r.clock.Now())
	s, ok := r.arch.Floor(now)
	if !ok {
		first, _, spanOK := r.arch.Span()
		if !spanOK {
			return pcp.FetchResult{}, fmt.Errorf("archive: replay fetch at %d: %w", now, ErrEmpty)
		}
		if s, ok = r.arch.Floor(first); !ok {
			return pcp.FetchResult{}, fmt.Errorf("archive: replay fetch at %d: %w", now, ErrEmpty)
		}
	}
	out := pcp.FetchResult{Timestamp: s.Timestamp, Values: make([]pcp.FetchValue, len(pmids))}
	for i, id := range pmids {
		c, inSchema := r.arch.col[id]
		if !inSchema {
			out.Values[i] = pcp.FetchValue{PMID: id, Status: pcp.StatusNoSuchPMID}
			continue
		}
		out.Values[i] = pcp.FetchValue{PMID: id, Status: pcp.StatusOK, Value: s.Values[c]}
	}
	return out, nil
}
