// Spec parsing: a GuideLLM-style declarative file, accepted as JSON or
// as a small YAML subset (block maps and lists by two-space indentation,
// inline {k: v, ...} flow maps, scalars, # comments) — enough for
// workload specs without pulling in a YAML dependency. Both syntaxes
// decode through the same raw tree walker, which rejects unknown keys so
// a typo in a spec fails loudly instead of silently meaning "default".
package workload

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"papimc/internal/simtime"
)

// LoadSpec reads and parses a spec file (JSON or YAML by content).
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := ParseSpec(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// ParseSpec parses a workload spec from JSON (first non-space byte '{')
// or the YAML subset, validates it, and applies defaults.
func ParseSpec(data []byte) (*Spec, error) {
	var raw any
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "{") {
		if err := json.Unmarshal(data, &raw); err != nil {
			return nil, specErr("json: %v", err)
		}
	} else {
		var err error
		raw, err = parseYAML(string(data))
		if err != nil {
			return nil, err
		}
	}
	s, err := decodeSpec(raw)
	if err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// --- YAML subset -------------------------------------------------------

type yamlLine struct {
	indent int
	text   string // content with indentation stripped
	num    int    // 1-based source line
}

func parseYAML(src string) (any, error) {
	var lines []yamlLine
	for i, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		body := strings.TrimLeft(line, " ")
		if strings.TrimSpace(body) == "" {
			continue
		}
		if strings.ContainsRune(line[:len(line)-len(body)], '\t') {
			return nil, specErr("yaml line %d: tabs are not allowed in indentation", i+1)
		}
		lines = append(lines, yamlLine{indent: len(line) - len(body), text: strings.TrimRight(body, " \r"), num: i + 1})
	}
	if len(lines) == 0 {
		return nil, specErr("empty spec")
	}
	node, rest, err := parseBlock(lines, lines[0].indent)
	if err != nil {
		return nil, err
	}
	if len(rest) > 0 {
		return nil, specErr("yaml line %d: unexpected dedent", rest[0].num)
	}
	return node, nil
}

// stripComment removes a trailing "#" comment. The spec grammar has no
// quoted strings containing '#', so a '#' preceded by start-of-line or a
// space always starts a comment.
func stripComment(line string) string {
	for i := 0; i < len(line); i++ {
		if line[i] == '#' && (i == 0 || line[i-1] == ' ') {
			return line[:i]
		}
	}
	return line
}

// parseBlock parses the run of lines at exactly indent, returning the
// node and the unconsumed lines (all at a smaller indent).
func parseBlock(lines []yamlLine, indent int) (any, []yamlLine, error) {
	if len(lines) == 0 || lines[0].indent < indent {
		return nil, lines, nil
	}
	if strings.HasPrefix(lines[0].text, "- ") || lines[0].text == "-" {
		return parseList(lines, indent)
	}
	return parseMap(lines, indent)
}

func parseMap(lines []yamlLine, indent int) (any, []yamlLine, error) {
	m := map[string]any{}
	for len(lines) > 0 {
		ln := lines[0]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, nil, specErr("yaml line %d: unexpected indent", ln.num)
		}
		key, rest, ok := strings.Cut(ln.text, ":")
		if !ok {
			return nil, nil, specErr("yaml line %d: expected 'key: value'", ln.num)
		}
		key = strings.TrimSpace(key)
		rest = strings.TrimSpace(rest)
		if _, dup := m[key]; dup {
			return nil, nil, specErr("yaml line %d: duplicate key %q", ln.num, key)
		}
		lines = lines[1:]
		if rest != "" {
			v, err := parseFlow(rest, ln.num)
			if err != nil {
				return nil, nil, err
			}
			m[key] = v
			continue
		}
		// Block value: the following deeper-indented lines.
		if len(lines) == 0 || lines[0].indent <= indent {
			m[key] = "" // empty value
			continue
		}
		v, remaining, err := parseBlock(lines, lines[0].indent)
		if err != nil {
			return nil, nil, err
		}
		m[key] = v
		lines = remaining
	}
	return m, lines, nil
}

func parseList(lines []yamlLine, indent int) (any, []yamlLine, error) {
	var out []any
	for len(lines) > 0 {
		ln := lines[0]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent || !(strings.HasPrefix(ln.text, "- ") || ln.text == "-") {
			return nil, nil, specErr("yaml line %d: expected '- ' list item", ln.num)
		}
		item := strings.TrimSpace(strings.TrimPrefix(ln.text, "-"))
		lines = lines[1:]
		if item == "" {
			// Item is a nested block on the following lines.
			if len(lines) == 0 || lines[0].indent <= indent {
				out = append(out, "")
				continue
			}
			v, remaining, err := parseBlock(lines, lines[0].indent)
			if err != nil {
				return nil, nil, err
			}
			out = append(out, v)
			lines = remaining
			continue
		}
		if strings.Contains(item, ":") && !strings.HasPrefix(item, "{") && !strings.HasPrefix(item, "[") {
			// "- key: value" starts an inline map whose remaining keys sit
			// on the following lines, indented past the dash.
			sub := []yamlLine{{indent: indent + 2, text: item, num: ln.num}}
			for len(lines) > 0 && lines[0].indent >= indent+2 {
				sub = append(sub, lines[0])
				lines = lines[1:]
			}
			// Normalize the sub-block to a common indent.
			base := sub[0].indent
			for i := 1; i < len(sub); i++ {
				if sub[i].indent < base {
					base = sub[i].indent
				}
			}
			for i := range sub {
				if sub[i].indent > base && strings.Contains(sub[i].text, ":") {
					// Deeper lines belong to nested keys; keep their indent.
					continue
				}
				sub[i].indent = base
			}
			v, remaining, err := parseMap(sub, base)
			if err != nil {
				return nil, nil, err
			}
			if len(remaining) > 0 {
				return nil, nil, specErr("yaml line %d: unexpected layout in list item", remaining[0].num)
			}
			out = append(out, v)
			continue
		}
		v, err := parseFlow(item, ln.num)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, v)
	}
	return out, lines, nil
}

// parseFlow parses an inline value: {k: v, ...}, [a, b], or a scalar.
func parseFlow(s string, lineNum int) (any, error) {
	s = strings.TrimSpace(s)
	switch {
	case strings.HasPrefix(s, "{"):
		if !strings.HasSuffix(s, "}") {
			return nil, specErr("yaml line %d: unterminated flow map", lineNum)
		}
		m := map[string]any{}
		for _, part := range splitFlow(s[1 : len(s)-1]) {
			if strings.TrimSpace(part) == "" {
				continue
			}
			k, v, ok := strings.Cut(part, ":")
			if !ok {
				return nil, specErr("yaml line %d: bad flow map entry %q", lineNum, part)
			}
			sub, err := parseFlow(strings.TrimSpace(v), lineNum)
			if err != nil {
				return nil, err
			}
			m[strings.TrimSpace(k)] = sub
		}
		return m, nil
	case strings.HasPrefix(s, "["):
		if !strings.HasSuffix(s, "]") {
			return nil, specErr("yaml line %d: unterminated flow list", lineNum)
		}
		var out []any
		for _, part := range splitFlow(s[1 : len(s)-1]) {
			if strings.TrimSpace(part) == "" {
				continue
			}
			sub, err := parseFlow(strings.TrimSpace(part), lineNum)
			if err != nil {
				return nil, err
			}
			out = append(out, sub)
		}
		return out, nil
	default:
		return strings.Trim(s, `"'`), nil
	}
}

// splitFlow splits on top-level commas, respecting nested {} and [].
func splitFlow(s string) []string {
	var parts []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '{', '[':
			depth++
		case '}', ']':
			depth--
		case ',':
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	return append(parts, s[start:])
}

// --- raw-tree decoding -------------------------------------------------

func decodeSpec(raw any) (*Spec, error) {
	m, err := asMap(raw, "spec")
	if err != nil {
		return nil, err
	}
	s := &Spec{}
	for key, v := range m {
		switch key {
		case "name":
			s.Name, err = asString(v, key)
		case "format":
			// Accepted for GuideLLM-style compatibility, ignored.
			_, err = asString(v, key)
		case "seed":
			s.Seed, err = asUint64(v, key)
		case "duration":
			s.Duration, err = asDuration(v, key)
		case "server":
			s.Server, err = decodeServer(v)
		case "cohorts":
			s.Cohorts, err = decodeCohorts(v)
		default:
			return nil, specErr("unknown key %q", key)
		}
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

func decodeServer(raw any) (ServerSpec, error) {
	var sv ServerSpec
	m, err := asMap(raw, "server")
	if err != nil {
		return sv, err
	}
	for key, v := range m {
		switch key {
		case "servers":
			sv.Servers, err = asInt(v, "server.servers")
		case "base":
			sv.Base, err = asDuration(v, "server.base")
		case "jitter":
			sv.Jitter, err = asFloat(v, "server.jitter")
		case "sizeref":
			sv.SizeRef, err = asFloat(v, "server.sizeref")
		default:
			return sv, specErr("unknown key server.%q", key)
		}
		if err != nil {
			return sv, err
		}
	}
	return sv, nil
}

func decodeCohorts(raw any) ([]CohortSpec, error) {
	list, ok := raw.([]any)
	if !ok {
		return nil, specErr("cohorts must be a list")
	}
	out := make([]CohortSpec, 0, len(list))
	for i, item := range list {
		c, err := decodeCohort(item, i)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

func decodeCohort(raw any, idx int) (CohortSpec, error) {
	var c CohortSpec
	m, err := asMap(raw, fmt.Sprintf("cohorts[%d]", idx))
	if err != nil {
		return c, err
	}
	ctx := func(f string) string { return fmt.Sprintf("cohorts[%d].%s", idx, f) }
	for key, v := range m {
		switch key {
		case "name":
			c.Name, err = asString(v, ctx(key))
		case "clients":
			c.Clients, err = asInt(v, ctx(key))
		case "rate":
			c.Rate, err = asFloat(v, ctx(key))
		case "mix":
			c.Mix, err = decodeMix(v, ctx(key))
		case "size":
			c.Size, err = decodeSize(v, ctx(key))
		case "diurnal":
			c.Diurnal, err = decodeDiurnal(v, ctx(key))
		case "windows":
			c.Windows, err = decodeWindows(v, ctx(key))
		default:
			return c, specErr("unknown key %s", ctx(key))
		}
		if err != nil {
			return c, err
		}
	}
	return c, nil
}

func decodeMix(raw any, ctx string) (Mix, error) {
	var mix Mix
	m, err := asMap(raw, ctx)
	if err != nil {
		return mix, err
	}
	for key, v := range m {
		var f float64
		if f, err = asFloat(v, ctx+"."+key); err != nil {
			return mix, err
		}
		switch key {
		case "live":
			mix.Live = f
		case "proxied":
			mix.Proxied = f
		case "archive":
			mix.Archive = f
		case "derived":
			mix.Derived = f
		default:
			return mix, specErr("unknown key %s.%s", ctx, key)
		}
	}
	return mix, nil
}

func decodeSize(raw any, ctx string) (SizeSpec, error) {
	var sz SizeSpec
	m, err := asMap(raw, ctx)
	if err != nil {
		return sz, err
	}
	for key, v := range m {
		switch key {
		case "min":
			sz.Min, err = asInt(v, ctx+".min")
		case "alpha":
			sz.Alpha, err = asFloat(v, ctx+".alpha")
		case "max":
			sz.Max, err = asInt(v, ctx+".max")
		default:
			return sz, specErr("unknown key %s.%s", ctx, key)
		}
		if err != nil {
			return sz, err
		}
	}
	return sz, nil
}

func decodeDiurnal(raw any, ctx string) ([]Harmonic, error) {
	list, ok := raw.([]any)
	if !ok {
		return nil, specErr("%s must be a list", ctx)
	}
	out := make([]Harmonic, 0, len(list))
	for i, item := range list {
		m, err := asMap(item, fmt.Sprintf("%s[%d]", ctx, i))
		if err != nil {
			return nil, err
		}
		var h Harmonic
		for key, v := range m {
			switch key {
			case "period":
				h.Period, err = asDuration(v, fmt.Sprintf("%s[%d].period", ctx, i))
			case "amplitude":
				h.Amplitude, err = asFloat(v, fmt.Sprintf("%s[%d].amplitude", ctx, i))
			case "phase":
				h.Phase, err = asFloat(v, fmt.Sprintf("%s[%d].phase", ctx, i))
			default:
				return nil, specErr("unknown key %s[%d].%s", ctx, i, key)
			}
			if err != nil {
				return nil, err
			}
		}
		out = append(out, h)
	}
	return out, nil
}

func decodeWindows(raw any, ctx string) ([]Window, error) {
	list, ok := raw.([]any)
	if !ok {
		return nil, specErr("%s must be a list", ctx)
	}
	out := make([]Window, 0, len(list))
	for i, item := range list {
		m, err := asMap(item, fmt.Sprintf("%s[%d]", ctx, i))
		if err != nil {
			return nil, err
		}
		var w Window
		for key, v := range m {
			switch key {
			case "start":
				w.Start, err = asDuration(v, fmt.Sprintf("%s[%d].start", ctx, i))
			case "mult":
				w.Mult, err = asFloat(v, fmt.Sprintf("%s[%d].mult", ctx, i))
			default:
				return nil, specErr("unknown key %s[%d].%s", ctx, i, key)
			}
			if err != nil {
				return nil, err
			}
		}
		out = append(out, w)
	}
	return out, nil
}

// --- scalar coercion ---------------------------------------------------

func asMap(v any, ctx string) (map[string]any, error) {
	m, ok := v.(map[string]any)
	if !ok {
		return nil, specErr("%s must be a map, got %T", ctx, v)
	}
	return m, nil
}

func asString(v any, ctx string) (string, error) {
	s, ok := v.(string)
	if !ok {
		return "", specErr("%s must be a string, got %T", ctx, v)
	}
	return s, nil
}

func asFloat(v any, ctx string) (float64, error) {
	switch x := v.(type) {
	case float64: // JSON numbers
		return x, nil
	case string:
		f, err := strconv.ParseFloat(x, 64)
		if err != nil {
			return 0, specErr("%s: %q is not a number", ctx, x)
		}
		return f, nil
	}
	return 0, specErr("%s must be a number, got %T", ctx, v)
}

func asInt(v any, ctx string) (int, error) {
	f, err := asFloat(v, ctx)
	if err != nil {
		return 0, err
	}
	n := int(f)
	if float64(n) != f {
		return 0, specErr("%s: %g is not an integer", ctx, f)
	}
	return n, nil
}

func asUint64(v any, ctx string) (uint64, error) {
	if s, ok := v.(string); ok {
		u, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return 0, specErr("%s: %q is not an unsigned integer", ctx, s)
		}
		return u, nil
	}
	n, err := asInt(v, ctx)
	if err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, specErr("%s: %d is negative", ctx, n)
	}
	return uint64(n), nil
}

// asDuration accepts "250us", "10m", "1h30m" (time.ParseDuration syntax)
// or a bare number of seconds.
func asDuration(v any, ctx string) (simtime.Duration, error) {
	if s, ok := v.(string); ok {
		if d, err := time.ParseDuration(s); err == nil {
			return simtime.Duration(d.Nanoseconds()), nil
		}
		// YAML scalars arrive as strings, so a bare number of seconds
		// lands here too.
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, specErr("%s: %q is not a duration", ctx, s)
		}
		return simtime.FromSeconds(f), nil
	}
	f, err := asFloat(v, ctx)
	if err != nil {
		return 0, err
	}
	return simtime.FromSeconds(f), nil
}
