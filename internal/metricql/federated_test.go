package metricql

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"papimc/internal/pcp"
)

// fedSource is a scriptable federated metric source: a namespace of
// node-qualified names where whole nodes can be marked down, answering
// with StatusNodeDown values and a *pcp.PartialError like a cluster
// root federator.
type fedSource struct {
	names []pcp.NameEntry
	vals  map[uint32]uint64
	node  map[uint32]string // pmid -> owning node
	down  map[string]bool
	ts    int64
}

func (f *fedSource) Names() ([]pcp.NameEntry, error) { return f.names, nil }

func (f *fedSource) Fetch(pmids []uint32) (pcp.FetchResult, error) {
	res := pcp.FetchResult{Timestamp: f.ts}
	missing := make(map[string]bool)
	for _, id := range pmids {
		if n := f.node[id]; f.down[n] {
			missing[n] = true
			res.Values = append(res.Values, pcp.FetchValue{PMID: id, Status: pcp.StatusNodeDown})
			continue
		}
		res.Values = append(res.Values, pcp.FetchValue{PMID: id, Status: pcp.StatusOK, Value: f.vals[id]})
	}
	if len(missing) > 0 {
		names := make([]string, 0, len(missing))
		for n := range missing {
			names = append(names, n)
		}
		return res, &pcp.PartialError{Missing: names, Cause: "scripted outage"}
	}
	return res, nil
}

// newFed builds a 3-node federated namespace with mem.read_bw and
// mem.write_bw on every node.
func newFed() *fedSource {
	f := &fedSource{
		vals: make(map[uint32]uint64),
		node: make(map[uint32]string),
		down: make(map[string]bool),
	}
	id := uint32(1)
	for _, n := range []string{"node001", "node002", "node003"} {
		for _, m := range []string{"mem.read_bw", "mem.write_bw"} {
			f.names = append(f.names, pcp.NameEntry{PMID: id, Name: n + ":" + m})
			f.node[id] = n
			f.vals[id] = uint64(id) * 10 // node001: 10,20; node002: 30,40; node003: 50,60
			id++
		}
	}
	return f
}

func TestParseByClause(t *testing.T) {
	cases := []struct{ in, want string }{
		{"sum(mem.read_bw) by (node)", "sum(mem.read_bw) by (node)"},
		{"avg( x )by( node )", "avg(x) by (node)"},
		{"sum(node*:mem.read_bw) by (node)", "sum(node*:mem.read_bw) by (node)"},
		{"sum(a) by (node) + 1", "(sum(a) by (node) + 1)"},
		{"by + 1", "(by + 1)"}, // "by" is contextual: still a metric name
		{"sum(by) by (node)", "sum(by) by (node)"},
	}
	for _, c := range cases {
		ex, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got := ex.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.want)
		}
		ex2, err := Parse(c.want)
		if err != nil {
			t.Errorf("reparse %q: %v", c.want, err)
			continue
		}
		if ex2.String() != c.want {
			t.Errorf("canonical %q not a fixed point: reparses to %q", c.want, ex2.String())
		}
	}
	bad := []string{
		"sum(x) by (zone)", // only the node label exists
		"sum(x) by ()",
		"sum(x) by node",
		"sum(x) by (node",
		"rate(x) by (node)", // rate is not a grouping aggregate
	}
	for _, c := range bad {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", c)
		}
	}
}

func TestFederatedExpansion(t *testing.T) {
	f := newFed()
	e := NewEngine(f)

	// An unqualified exact name expands to every node's instance.
	q, err := e.Query("mem.read_bw")
	if err != nil {
		t.Fatal(err)
	}
	v, err := q.Eval()
	if err != nil {
		t.Fatal(err)
	}
	wantNames := []string{"node001:mem.read_bw", "node002:mem.read_bw", "node003:mem.read_bw"}
	if !reflect.DeepEqual(v.Names, wantNames) {
		t.Errorf("names: got %v want %v", v.Names, wantNames)
	}
	if !reflect.DeepEqual(v.Vals, []float64{10, 30, 50}) {
		t.Errorf("vals: got %v", v.Vals)
	}

	// A node-qualified glob scopes to that node.
	q2, err := e.Query("sum(node002:mem.*)")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := q2.Eval()
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := v2.Scalar(); s != 70 { // 30 + 40
		t.Errorf("node002 sum: got %v want 70", s)
	}

	// An unqualified glob matches the metric part on every node.
	q3, err := e.Query("sum(mem.*_bw)")
	if err != nil {
		t.Fatal(err)
	}
	v3, err := q3.Eval()
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := v3.Scalar(); s != 210 { // 10+20+30+40+50+60
		t.Errorf("cluster sum: got %v want 210", s)
	}
}

func TestGroupByNode(t *testing.T) {
	f := newFed()
	e := NewEngine(f)
	q, err := e.Query("sum(mem.*_bw) by (node)")
	if err != nil {
		t.Fatal(err)
	}
	if w, err := q.Width(); err != nil || w != -1 {
		t.Errorf("Width() = %d, %v; want -1 (dynamic)", w, err)
	}
	v, err := q.Eval()
	if err != nil {
		t.Fatal(err)
	}
	want := Value{Names: []string{"node001", "node002", "node003"}, Vals: []float64{30, 70, 110}}
	if !reflect.DeepEqual(v, want) {
		t.Errorf("got %+v want %+v", v, want)
	}

	// Grouped aggregates compose with arithmetic (dynamic width).
	q2, err := e.Query("max(mem.read_bw) by (node) * 2")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := q2.Eval()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v2.Vals, []float64{20, 60, 100}) {
		t.Errorf("scaled group max: got %v", v2.Vals)
	}

	// A grouped aggregate of a scalar is a bind-time error.
	if _, err := e.Query("sum(3) by (node)"); err == nil {
		t.Error("sum(3) by (node) bound cleanly, want width error")
	}
}

func TestPartialEval(t *testing.T) {
	f := newFed()
	e := NewEngine(f)
	q, err := e.Query("sum(mem.read_bw) by (node)")
	if err != nil {
		t.Fatal(err)
	}

	f.down["node002"] = true
	v, err := q.Eval()
	var pe *pcp.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("expected *pcp.PartialError, got %v", err)
	}
	if !reflect.DeepEqual(pe.Missing, []string{"node002"}) {
		t.Errorf("missing: got %v want [node002]", pe.Missing)
	}
	want := Value{Names: []string{"node001", "node003"}, Vals: []float64{10, 50}}
	if !reflect.DeepEqual(v, want) {
		t.Errorf("partial answer: got %+v want %+v", v, want)
	}

	// Same timestamp, different down-set: the memo must not serve the
	// old shape.
	f.down["node002"] = false
	f.down["node001"] = true
	v2, err := q.Eval()
	if !errors.As(err, &pe) || pe.Missing[0] != "node001" {
		t.Fatalf("second outage not reported: %v", err)
	}
	want2 := Value{Names: []string{"node002", "node003"}, Vals: []float64{30, 50}}
	if !reflect.DeepEqual(v2, want2) {
		t.Errorf("after down-set change: got %+v want %+v", v2, want2)
	}

	// Recovery at a later timestamp restores the full answer.
	f.down["node001"] = false
	f.ts += 1e9
	v3, err := q.Eval()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v3.Vals, []float64{10, 30, 50}) {
		t.Errorf("after recovery: got %+v", v3)
	}
}

func TestPartialAllDown(t *testing.T) {
	f := newFed()
	e := NewEngine(f)
	q, err := e.Query("avg(mem.read_bw) by (node)")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"node001", "node002", "node003"} {
		f.down[n] = true
	}
	v, err := q.Eval()
	var pe *pcp.PartialError
	if !errors.As(err, &pe) || len(pe.Missing) != 3 {
		t.Fatalf("expected all-down partial error, got %v", err)
	}
	if v.Names == nil || len(v.Vals) != 0 {
		t.Errorf("all-down grouped answer should be empty vector, got %+v", v)
	}

	// The ungrouped aggregate has no empty-vector meaning: it errors.
	q2, err := e.Query("sum(mem.read_bw)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q2.Eval(); err == nil {
		t.Error("sum over all-down vector succeeded")
	}
}

func TestPartialRateSkipsDownNodes(t *testing.T) {
	f := newFed()
	e := NewEngine(f)
	q, err := e.Query("rate(mem.read_bw)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Eval(); err != nil {
		t.Fatal(err)
	}
	// Advance all counters by 100 over 1s, then take node003 down.
	for id := range f.vals {
		f.vals[id] += 100
	}
	f.ts += 1e9
	f.down["node003"] = true
	v, err := q.Eval()
	var pe *pcp.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("expected partial error, got %v", err)
	}
	wantNames := []string{"node001:mem.read_bw", "node002:mem.read_bw"}
	if !reflect.DeepEqual(v.Names, wantNames) {
		t.Errorf("rate names: got %v want %v", v.Names, wantNames)
	}
	for i, x := range v.Vals {
		if math.Abs(x-100) > 1e-9 {
			t.Errorf("rate[%d] = %v, want 100", i, x)
		}
	}
}

func TestPartialWindowWidthChange(t *testing.T) {
	f := newFed()
	e := NewEngine(f)
	q, err := e.Query("avg_over(mem.read_bw, 10s)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Eval(); err != nil {
		t.Fatal(err)
	}
	// A node going down shrinks the vector mid-window; the ring must
	// reset rather than index out of shape.
	f.ts += 1e9
	f.down["node001"] = true
	v, err := q.Eval()
	var pe *pcp.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("expected partial error, got %v", err)
	}
	if len(v.Vals) != 2 {
		t.Errorf("window width after outage: got %d want 2", len(v.Vals))
	}
	// And recovery grows it back.
	f.ts += 1e9
	f.down["node001"] = false
	v2, err := q.Eval()
	if err != nil {
		t.Fatal(err)
	}
	if len(v2.Vals) != 3 {
		t.Errorf("window width after recovery: got %d want 3", len(v2.Vals))
	}
}

func TestNodeOf(t *testing.T) {
	cases := map[string]string{
		"node003:mem.read_bw": "node003",
		"mem.read_bw":         "",
		"a:b:c":               "a",
	}
	for in, want := range cases {
		if got := nodeOf(in); got != want {
			t.Errorf("nodeOf(%q) = %q, want %q", in, got, want)
		}
	}
	if !strings.Contains((&pcp.PartialError{Missing: []string{"n1", "n2"}}).Error(), "2 node(s) missing") {
		t.Error("PartialError message does not count missing nodes")
	}
}
