package metricql

import (
	"fmt"

	"papimc/internal/simtime"
)

// Rule is one pmie-style threshold predicate: fire the callback when
// Expr Op Threshold holds for Hold consecutive samples, then hold off.
type Rule struct {
	Name      string
	Expr      string // scalar metricql expression
	Op        string // ">", ">=", "<", "<="
	Threshold float64
	// Hold is how many consecutive breaching samples are required
	// before firing (default 1): transient single-sample spikes on a
	// noisy counter don't alert.
	Hold int
	// Holdoff suppresses re-firing for this long after a firing
	// (0 = no suppression beyond the hysteresis below).
	Holdoff simtime.Duration
}

// Firing describes one rule activation delivered to the callback.
type Firing struct {
	Rule      Rule
	Timestamp int64 // daemon timestamp (ns) of the breaching sample
	Value     float64
}

type ruleState struct {
	rule     Rule
	q        *Query
	run      int   // consecutive breaching samples
	armed    bool  // hysteresis: must observe a clear sample to re-arm
	lastFire int64 // timestamp of last firing
	hasFired bool
}

// Ruleset evaluates a set of rules on the sampling cadence: each Step
// performs one coalesced EvalAll for every rule expression and applies
// hold / holdoff / hysteresis before invoking the callback. Like pmie,
// it is a consumer of the metric stream, not part of it — it works
// identically over a live daemon, a proxy, or an archive replay.
type Ruleset struct {
	eng    *Engine
	onFire func(Firing)
	rules  []*ruleState
	lastTS int64
	hasTS  bool
}

// NewRuleset creates an empty ruleset over e, delivering firings to
// onFire (which must be non-nil).
func NewRuleset(e *Engine, onFire func(Firing)) *Ruleset {
	return &Ruleset{eng: e, onFire: onFire}
}

// Add validates and binds one rule. The expression must evaluate to a
// scalar (aggregate vectors with sum/avg/... first).
func (rs *Ruleset) Add(r Rule) error {
	switch r.Op {
	case ">", ">=", "<", "<=":
	default:
		return fmt.Errorf("metricql: rule %q: bad comparison %q", r.Name, r.Op)
	}
	if r.Hold <= 0 {
		r.Hold = 1
	}
	q, err := rs.eng.Query(r.Expr)
	if err != nil {
		return fmt.Errorf("metricql: rule %q: %w", r.Name, err)
	}
	if w, err := staticWidth(q.root); err != nil {
		return fmt.Errorf("metricql: rule %q: %w", r.Name, err)
	} else if w > 1 {
		return fmt.Errorf("metricql: rule %q: expression is a vector of %d; aggregate it to a scalar", r.Name, w)
	}
	rs.rules = append(rs.rules, &ruleState{rule: r, q: q, armed: true})
	return nil
}

// breaches reports whether v is on the firing side of the threshold.
func (st *ruleState) breaches(v float64) bool {
	t := st.rule.Threshold
	switch st.rule.Op {
	case ">":
		return v > t
	case ">=":
		return v >= t
	case "<":
		return v < t
	case "<=":
		return v <= t
	}
	return false
}

// Step evaluates every rule against the current fetch (one coalesced
// round trip) and fires callbacks. A Step within the same daemon
// sampling interval as the previous one is a no-op: rule state advances
// on the daemon's cadence, not the caller's.
func (rs *Ruleset) Step() error {
	if len(rs.rules) == 0 {
		return nil
	}
	qs := make([]*Query, len(rs.rules))
	for i, st := range rs.rules {
		qs[i] = st.q
	}
	vals, err := rs.eng.EvalAll(qs...)
	if err != nil {
		return err
	}
	ts, _ := rs.eng.LastTimestamp()
	if rs.hasTS && ts == rs.lastTS {
		return nil
	}
	rs.lastTS, rs.hasTS = ts, true
	for i, st := range rs.rules {
		v, err := vals[i].Scalar()
		if err != nil {
			return fmt.Errorf("metricql: rule %q: %w", st.rule.Name, err)
		}
		if !st.breaches(v) {
			st.run = 0
			st.armed = true
			continue
		}
		st.run++
		if st.run < st.rule.Hold || !st.armed {
			continue
		}
		if st.hasFired && st.rule.Holdoff > 0 && simtime.Duration(ts-st.lastFire) < st.rule.Holdoff {
			continue
		}
		st.armed = false // re-arm only after a clear sample
		st.lastFire = ts
		st.hasFired = true
		rs.onFire(Firing{Rule: st.rule, Timestamp: ts, Value: v})
	}
	return nil
}
