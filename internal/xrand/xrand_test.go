package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("seeds 1 and 2 produced %d identical values of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Child and continued parent streams must not be identical.
	identical := true
	for i := 0; i < 64; i++ {
		if parent.Uint64() != child.Uint64() {
			identical = false
			break
		}
	}
	if identical {
		t.Error("split child reproduces parent stream")
	}
}

func TestInt63nRange(t *testing.T) {
	s := New(3)
	for _, n := range []int64{1, 2, 7, 1000, math.MaxInt64} {
		for i := 0; i < 200; i++ {
			v := s.Int63n(n)
			if v < 0 || v >= n {
				t.Fatalf("Int63n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestInt63nPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for n=0")
		}
	}()
	New(1).Int63n(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(9)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(13)
	const n = 100000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(17)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(19)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(23)
	for i := 0; i < 1000; i++ {
		if v := s.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal produced non-positive %v", v)
		}
	}
}
