package archive

import (
	"bytes"
	"reflect"
	"testing"

	"papimc/internal/pcp"
)

// fuzzArchiveBytes serializes a small valid archive to seed the corpus.
func fuzzArchiveBytes(tb testing.TB, rows int) []byte {
	tb.Helper()
	a, err := New([]pcp.NameEntry{
		{PMID: 1, Name: "fuzz.metric.a"},
		{PMID: 2, Name: "fuzz.metric.b"},
		{PMID: 7, Name: "fuzz.metric.c"},
	}, Options{})
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		row := Sample{
			Timestamp: int64(i) * 10,
			Values:    []uint64{uint64(i) * 100, 1 << (uint(i) % 60), ^uint64(0) - uint64(i)},
		}
		if err := a.AppendSample(row); err != nil {
			tb.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadArchive hammers the varint-delta archive decoder with hostile
// input. Two properties:
//
//  1. Totality: Read never panics or runs away — any input is either
//     decoded or rejected with an error, no matter how the length
//     fields, varints, or deltas are mangled.
//  2. Soundness: an input Read accepts yields a well-formed archive —
//     strictly increasing timestamps, full-width rows — that round-trips
//     through WriteTo/Read to identical samples.
func FuzzReadArchive(f *testing.F) {
	empty := fuzzArchiveBytes(f, 0)
	valid := fuzzArchiveBytes(f, 9)
	f.Add(empty)
	f.Add(valid)
	// Truncations at structurally interesting places.
	for _, n := range []int{0, 3, len(fileMagic), len(fileMagic) + 2, len(valid) / 2, len(valid) - 1} {
		f.Add(valid[:n])
	}
	// Single-bit flips in the header, schema, and delta stream.
	for _, off := range []int{1, len(fileMagic), len(fileMagic) + 4, len(valid) / 2, len(valid) - 2} {
		b := append([]byte(nil), valid...)
		b[off] ^= 0x10
		f.Add(b)
	}
	f.Add([]byte(fileMagic))
	f.Add([]byte("not an archive at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := Read(bytes.NewReader(data), Options{})
		if err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		rows, err := a.All()
		if err != nil {
			t.Fatalf("accepted archive failed to decode: %v", err)
		}
		prev := int64(-1 << 62)
		for _, r := range rows {
			if r.Timestamp <= prev {
				t.Fatalf("accepted archive has non-increasing timestamps: %d after %d", r.Timestamp, prev)
			}
			prev = r.Timestamp
			if len(r.Values) != len(a.Names()) {
				t.Fatalf("row at ts=%d has %d values for a %d-column schema", r.Timestamp, len(r.Values), len(a.Names()))
			}
		}

		var out bytes.Buffer
		if _, err := a.WriteTo(&out); err != nil {
			t.Fatalf("accepted archive failed to re-serialize: %v", err)
		}
		b, err := Read(bytes.NewReader(out.Bytes()), Options{})
		if err != nil {
			t.Fatalf("round-tripped archive rejected: %v", err)
		}
		rows2, err := b.All()
		if err != nil {
			t.Fatalf("round-tripped archive failed to decode: %v", err)
		}
		if len(rows) == 0 && len(rows2) == 0 {
			return
		}
		if !reflect.DeepEqual(rows, rows2) {
			t.Fatalf("round trip changed samples:\n%v\n%v", rows, rows2)
		}
	})
}
