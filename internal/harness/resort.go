package harness

import (
	"fmt"

	"papimc/internal/arch"
	"papimc/internal/expect"
	"papimc/internal/model"
	"papimc/internal/node"
	"papimc/internal/sweep"
)

// ResortRoutine selects one of Section IV's measured loop nests.
type ResortRoutine int

// The measured re-sort nests.
const (
	S1CFLoopNest1 ResortRoutine = iota
	S1CFLoopNest2
	S1CFCombined
	S2CFRoutine
)

// String implements fmt.Stringer.
func (r ResortRoutine) String() string {
	switch r {
	case S1CFLoopNest1:
		return "S1CF.LN1"
	case S1CFLoopNest2:
		return "S1CF.LN2"
	case S1CFCombined:
		return "S1CF.combined"
	case S2CFRoutine:
		return "S2CF"
	default:
		return fmt.Sprintf("ResortRoutine(%d)", int(r))
	}
}

// Traffic returns the model prediction for the routine at grid (n,r,c).
func (rt ResortRoutine) Traffic(ctx model.Context, n, r, c int64) model.Traffic {
	switch rt {
	case S1CFLoopNest1:
		return model.S1CFLoopNest1(ctx, n, r, c)
	case S1CFLoopNest2:
		return model.S1CFLoopNest2(ctx, n, r, c)
	case S1CFCombined:
		return model.S1CFCombined(ctx, n, r, c)
	case S2CFRoutine:
		return model.S2CF(ctx, n, r, c)
	default:
		panic(fmt.Sprintf("harness: unknown resort routine %d", int(rt)))
	}
}

// Expected returns the closed-form expectation for the routine.
func (rt ResortRoutine) Expected(n, r, c int64, prefetch bool) expect.Traffic {
	switch rt {
	case S1CFLoopNest1:
		return expect.S1CFLoopNest1(n, r, c, prefetch)
	case S1CFLoopNest2:
		return expect.S1CFLoopNest2(n, r, c)
	case S1CFCombined:
		return expect.S1CFCombined(n, r, c)
	case S2CFRoutine:
		return expect.S2CF(n, r, c, prefetch)
	default:
		panic(fmt.Sprintf("harness: unknown resort routine %d", int(rt)))
	}
}

// ResortPoint is one problem size of a re-sort measurement: the range
// (min..max) over the configured number of runs, as Figs. 6–9 plot.
type ResortPoint struct {
	N                  int64
	Runs               int
	MinReadBytes       float64
	MaxReadBytes       float64
	MinWriteBytes      float64
	MaxWriteBytes      float64
	ExpectedReadBytes  int64
	ExpectedWriteBytes int64
}

// ResortConfig parameterizes a Figs. 6–9 sweep.
type ResortConfig struct {
	Machine  arch.Machine
	Routine  ResortRoutine
	Prefetch bool // -fprefetch-loop-arrays
	GridR    int64
	GridC    int64
	Route    node.Route
	Sizes    []int64
	Runs     int // the paper uses 50
	Options  node.Options
	// Workers bounds the parallel sweep executor; <1 means one worker
	// per CPU. Output is identical for every worker count.
	Workers int
}

// ResortSweep measures the per-rank memory traffic of one re-sort
// routine across problem sizes, each size run cfg.Runs times with the
// min–max range recorded ("pursuant to organically measuring a
// production application job, we do not use the average of multiple
// repetitions"). Every (size, run) pair is an independent sweep task on
// its own seeded testbed, so runs of one size execute concurrently and
// the min–max fold happens after reassembly, in task order.
func ResortSweep(cfg ResortConfig) ([]ResortPoint, error) {
	if cfg.Runs <= 0 {
		cfg.Runs = 50
	}
	// The re-sort loops are OpenMP-parallel across every usable core
	// (Listings 5–9), so no L3 slices are borrowable and the effective
	// per-core capacity is the ~5 MB share Eq. 7 uses.
	ctx := model.Batched(cfg.Machine)
	ctx.SoftwarePrefetch = cfg.Prefetch
	type sample struct{ r, w float64 }
	samples, err := sweep.Map(len(cfg.Sizes)*cfg.Runs, cfg.Workers, func(ti int) (sample, error) {
		n := cfg.Sizes[ti/cfg.Runs]
		tb, err := pointTestbed(cfg.Machine, cfg.Options, ti)
		if err != nil {
			return sample{}, err
		}
		defer tb.Close()
		tr := cfg.Routine.Traffic(ctx, n, cfg.GridR, cfg.GridC)
		r, w, err := MeasureAveraged(tb, cfg.Route, 1, func(int) {
			tb.Nodes[0].Play(0, tr, 4)
		})
		if err != nil {
			return sample{}, err
		}
		return sample{r, w}, nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]ResortPoint, 0, len(cfg.Sizes))
	for i, n := range cfg.Sizes {
		pt := ResortPoint{N: n, Runs: cfg.Runs}
		want := cfg.Routine.Expected(n, cfg.GridR, cfg.GridC, cfg.Prefetch)
		pt.ExpectedReadBytes = want.ReadBytes
		pt.ExpectedWriteBytes = want.WriteBytes
		for run := 0; run < cfg.Runs; run++ {
			s := samples[i*cfg.Runs+run]
			if run == 0 || s.r < pt.MinReadBytes {
				pt.MinReadBytes = s.r
			}
			if run == 0 || s.r > pt.MaxReadBytes {
				pt.MaxReadBytes = s.r
			}
			if run == 0 || s.w < pt.MinWriteBytes {
				pt.MinWriteBytes = s.w
			}
			if run == 0 || s.w > pt.MaxWriteBytes {
				pt.MaxWriteBytes = s.w
			}
		}
		out = append(out, pt)
	}
	return out, nil
}

// Fig10Row is one bar group of Fig. 10: a routine's realized bandwidth
// and traffic at one problem size on the 16-node, 4×8-grid job.
type Fig10Row struct {
	Routine        string
	N              int64
	ReadBytes      int64
	WriteBytes     int64
	ReadWriteRatio float64
	BandwidthGBs   float64
}

// Fig10 computes the large-job re-sort comparison: S1CF (its two loop
// nests back to back) versus S2CF on a 4×8 virtual processor grid at
// N ∈ {1344, 2016}, without software prefetch.
func Fig10(machine arch.Machine, sizes []int64) []Fig10Row {
	const gr, gc = 4, 8
	ctx := model.Serial(machine)
	var out []Fig10Row
	for _, n := range sizes {
		ln1 := model.S1CFLoopNest1(ctx, n, gr, gc)
		ln2 := model.S1CFLoopNest2(ctx, n, gr, gc)
		s1 := model.Traffic{
			ReadBytes:  ln1.ReadBytes + ln2.ReadBytes,
			WriteBytes: ln1.WriteBytes + ln2.WriteBytes,
			Duration:   ln1.Duration + ln2.Duration,
		}
		s2 := model.S2CF(ctx, n, gr, gc)
		for _, row := range []struct {
			name string
			tr   model.Traffic
		}{{"S1CF", s1}, {"S2CF", s2}} {
			out = append(out, Fig10Row{
				Routine:        row.name,
				N:              n,
				ReadBytes:      row.tr.ReadBytes,
				WriteBytes:     row.tr.WriteBytes,
				ReadWriteRatio: float64(row.tr.ReadBytes) / float64(row.tr.WriteBytes),
				BandwidthGBs:   float64(row.tr.TotalBytes()) / row.tr.Duration.Seconds() / 1e9,
			})
		}
	}
	return out
}
