package qmc

import (
	"math"
	"testing"
)

func cfg(alpha float64) Config {
	return Config{Alpha: alpha, Walkers: 200, StepSize: 0.3, Seed: 42}
}

func TestExactVMCEnergy(t *testing.T) {
	if e := ExactVMCEnergy(1); e != 1.5 {
		t.Errorf("E(1) = %v, want 1.5", e)
	}
	if e := ExactVMCEnergy(0.8); math.Abs(e-1.5375) > 1e-12 {
		t.Errorf("E(0.8) = %v, want 1.5375", e)
	}
	// The variational minimum is at α=1.
	if ExactVMCEnergy(0.7) <= 1.5 || ExactVMCEnergy(1.4) <= 1.5 {
		t.Error("variational bound violated analytically")
	}
}

// At α=1 the trial is exact: E_L ≡ 1.5 with zero variance.
func TestVMCExactTrial(t *testing.T) {
	res, err := VMCNoDrift(cfg(1), 300)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Energy-1.5) > 1e-10 {
		t.Errorf("energy = %v, want exactly 1.5", res.Energy)
	}
	if res.Variance > 1e-10 {
		t.Errorf("variance = %v, want 0 (zero-variance principle)", res.Variance)
	}
}

// For a non-optimal α the sampled energy must match the analytic
// expectation and exceed the ground state (variational principle).
func TestVMCVariationalEnergy(t *testing.T) {
	for _, alpha := range []float64{0.7, 0.85, 1.25} {
		res, err := VMCNoDrift(cfg(alpha), 2000)
		if err != nil {
			t.Fatal(err)
		}
		want := ExactVMCEnergy(alpha)
		if math.Abs(res.Energy-want) > 0.02*want {
			t.Errorf("alpha=%v: VMC energy %v, analytic %v", alpha, res.Energy, want)
		}
		if res.Energy <= GroundStateEnergy {
			t.Errorf("alpha=%v: VMC energy %v below the ground state", alpha, res.Energy)
		}
	}
}

// Drifted VMC samples the same distribution with higher acceptance.
func TestVMCDriftSameEnergyHigherAcceptance(t *testing.T) {
	c := cfg(0.8)
	plain, err := VMCNoDrift(c, 2000)
	if err != nil {
		t.Fatal(err)
	}
	drift, err := VMCDrift(c, 2000)
	if err != nil {
		t.Fatal(err)
	}
	want := ExactVMCEnergy(0.8)
	if math.Abs(drift.Energy-want) > 0.02*want {
		t.Errorf("drift VMC energy %v, analytic %v", drift.Energy, want)
	}
	if drift.Acceptance <= plain.Acceptance {
		t.Errorf("drift acceptance %v not above plain %v", drift.Acceptance, plain.Acceptance)
	}
	if drift.Acceptance < 0.9 {
		t.Errorf("drift acceptance %v unexpectedly low", drift.Acceptance)
	}
}

// DMC projects out the ground state from an imperfect trial.
func TestDMCConvergesToGroundState(t *testing.T) {
	c := Config{Alpha: 0.8, Walkers: 500, StepSize: 0.02, Seed: 7}
	res, err := DMC(c, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Energy-GroundStateEnergy) > 0.05 {
		t.Errorf("DMC energy = %v, want %v ± 0.05", res.Energy, GroundStateEnergy)
	}
	// The trial's VMC energy is 1.5375: DMC must improve on it.
	if res.Energy >= ExactVMCEnergy(0.8) {
		t.Errorf("DMC energy %v did not improve on the VMC energy", res.Energy)
	}
	// Population control keeps the census near the target.
	if res.Walkers < c.Walkers/2 || res.Walkers > c.Walkers*2 {
		t.Errorf("final population %d strayed from target %d", res.Walkers, c.Walkers)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := VMCNoDrift(cfg(0.9), 200)
	if err != nil {
		t.Fatal(err)
	}
	b, err := VMCNoDrift(cfg(0.9), 200)
	if err != nil {
		t.Fatal(err)
	}
	if a.Energy != b.Energy || a.Acceptance != b.Acceptance {
		t.Error("same seed produced different results")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Alpha: 0, Walkers: 10, StepSize: 0.1},
		{Alpha: 1, Walkers: 0, StepSize: 0.1},
		{Alpha: 1, Walkers: 10, StepSize: 0},
	}
	for i, c := range bad {
		if _, err := VMCNoDrift(c, 10); err == nil {
			t.Errorf("config %d accepted", i)
		}
		if _, err := DMC(c, 10); err == nil {
			t.Errorf("config %d accepted by DMC", i)
		}
	}
	if _, err := VMCNoDrift(cfg(1), 0); err == nil {
		t.Error("zero steps accepted")
	}
	if _, err := DMC(cfg(1), -1); err == nil {
		t.Error("negative steps accepted")
	}
}

func TestPhaseOrder(t *testing.T) {
	ph := Phases()
	if len(ph) != 3 || ph[0] != PhaseVMCNoDrift || ph[1] != PhaseVMCDrift || ph[2] != PhaseDMC {
		t.Errorf("phases = %v", ph)
	}
}
