package pcp

import (
	"errors"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"papimc/internal/faultconn"
)

// Pipelined-path chaos coverage. The chaos suite proper
// (internal/chaos) pins its upstream clients to Version1 because its
// conservation laws count one fatal fault per failed round trip — exact
// only when requests are single-flight. These tests are the pipelined
// counterpart: deterministic faultconn faults against a Version2
// connection with many requests in flight, asserting the per-request
// contract — every outstanding request surfaces a typed error, nothing
// hangs, and a per-request deadline fails only its own request.

// negotiatedReadBytes is the client-side read offset after connection
// setup on the happy path: the 4-byte handshake echo plus the lockstep
// PDUVersionResp frame (5-byte header + 4-byte version payload). Faults
// pinned past this offset land inside pipelined response traffic, not
// inside connection setup.
const negotiatedReadBytes = 4 + 5 + 4

// dialFaulted dials the daemon through a fault injector.
func dialFaulted(t *testing.T, addr string, sched faultconn.Schedule) (*Client, *faultconn.Injector) {
	t.Helper()
	inj := faultconn.New(1, sched)
	raw, err := inj.Dial(func() (net.Conn, error) { return net.Dial("tcp", addr) })()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClientConn(raw)
	if err != nil {
		t.Fatal(err)
	}
	return c, inj
}

// TestPipelinedMidStreamReset: a connection reset pinned mid-response
// while many requests are in flight must complete every one of them
// with a typed error — no request may hang, and later requests must get
// the sticky failure immediately.
func TestPipelinedMidStreamReset(t *testing.T) {
	_, _, addr := startPipelineDaemon(t, 8)
	c, inj := dialFaulted(t, addr, faultconn.Schedule{
		Exact: []faultconn.Fault{{
			Conn: 0, Dir: faultconn.Read, Off: negotiatedReadBytes + 5,
			Kind: faultconn.Reset, // mid tagged header of an early response
		}},
	})
	defer c.Close()
	if c.Version() < Version2 {
		t.Fatalf("negotiated version %d, want pipelined", c.Version())
	}

	const inflight = 16
	errs := make([]error, inflight)
	var wg sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Fetch([]uint32{1, 2, 3})
		}(i)
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("pipelined requests hung after a mid-stream reset")
	}

	failed := 0
	for i, err := range errs {
		if err == nil {
			continue // requests answered before the reset may succeed
		}
		failed++
		if !errors.Is(err, faultconn.ErrReset) && !errors.Is(err, ErrClientClosed) && !isNetError(err) {
			t.Errorf("request %d: err %v is not a typed transport error", i, err)
		}
	}
	if failed == 0 {
		t.Fatal("no request observed the reset — fault did not fire where expected")
	}
	if st := inj.Stats(); st.Resets != 1 {
		t.Fatalf("injector stats = %s, want exactly one reset", st)
	}
	// The failure is sticky: a fresh request fails immediately, typed.
	start := time.Now()
	if _, err := c.Fetch([]uint32{1}); err == nil {
		t.Fatal("fetch on a dead pipelined connection succeeded")
	} else if time.Since(start) > time.Second {
		t.Fatal("sticky failure was not immediate")
	}
}

// TestPipelinedStallPerRequestDeadline is the pipelined counterpart of
// the chaos suite's TestClientDeadlineUnderStall: the response stream
// stalls mid-flight, and every in-flight request times out with
// ErrRequestTimeout at its own per-request deadline — the whole batch
// of goroutines unblocks at ~the deadline, not at the stall length.
func TestPipelinedStallPerRequestDeadline(t *testing.T) {
	_, _, addr := startPipelineDaemon(t, 8)
	c, inj := dialFaulted(t, addr, faultconn.Schedule{
		Exact: []faultconn.Fault{{
			Conn: 0, Dir: faultconn.Read, Off: negotiatedReadBytes + 3,
			Kind: faultconn.Stall,
		}},
		// Per-request deadlines must win by a wide margin. (Close waits
		// out the stall — the injected sleep holds the reader — so the
		// stall also bounds the test's teardown time.)
		MaxStall: 3 * time.Second,
	})
	defer c.Close()
	const deadline = 150 * time.Millisecond
	c.SetTimeout(deadline)

	const inflight = 8
	errs := make([]error, inflight)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Fetch([]uint32{1, 2})
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	timedOut := 0
	for i, err := range errs {
		if err == nil {
			continue
		}
		timedOut++
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Errorf("request %d: err %v, want a deadline error", i, err)
		}
	}
	if timedOut == 0 {
		t.Fatal("no request timed out through the stalled stream")
	}
	if elapsed > 20*deadline {
		t.Fatalf("requests unblocked after %v, want ~%v — deadline is not per-request", elapsed, deadline)
	}
	if st := inj.Stats(); st.Stalls != 1 {
		t.Fatalf("injector stats = %s, want exactly one stall", st)
	}
}

func isNetError(err error) bool {
	var nerr net.Error
	return errors.As(err, &nerr)
}
