package pmproxy

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"papimc/internal/pcp"
)

// ErrAdmissionRejected is the typed rejection every shed request fails
// with: the proxy is up but chose not to serve this request now. It
// wraps pcp.ErrOverload, so one errors.Is check classifies a shed both
// in-process and over the wire (where it travels as a PDUStatusError
// carrying pcp.StatusOverload).
var ErrAdmissionRejected = fmt.Errorf("pmproxy: admission rejected: %w", pcp.ErrOverload)

// DefaultTenant is the tenant requests carry when the client never set
// one (Version1/Version2 peers, or in-process callers using Fetch).
const DefaultTenant uint32 = 0

// AdmitRequest is one admission decision's input: who is asking, how
// much upstream work the request represents, and when (proxy timebase,
// nanoseconds — virtual time under a simtime clock, so policies must
// derive all timing from Now, never the wall clock).
type AdmitRequest struct {
	Tenant uint32
	// Cost is the upstream work the request represents: 1 for a single
	// fetch, the number of distinct miss groups for a batch.
	Cost int
	// Priority is the resolved tenant priority, 0 (highest) to 3.
	Priority int
	Now      int64
}

// Policy decides whether a request may proceed to the upstream. A nil
// return admits; a non-nil return must wrap ErrAdmissionRejected so the
// shed stays typed end to end. Implementations must be safe for
// concurrent use and deterministic given the AdmitRequest (all timing
// comes from Now).
type Policy interface {
	Name() string
	Admit(req AdmitRequest) error
}

// TenantConfig is the per-tenant quota and scheduling configuration.
type TenantConfig struct {
	// Rate is the token-bucket refill rate in requests/sec. Zero means
	// the tenant has no quota of its own: under the token-bucket policy
	// a zero-rate tenant is always shed.
	Rate float64
	// Burst is the bucket depth; it defaults to max(Rate, 1) so a tenant
	// can always spend about one second of its quota at once.
	Burst float64
	// Weight is the tenant's weighted-fair-queueing share (default 1):
	// a weight-2 tenant drains its queue twice as fast as a weight-1
	// tenant when both are backlogged.
	Weight float64
	// Priority ranks the tenant for the priority policy: 0 (highest,
	// shed last) through 3 (lowest, shed first). Values outside that
	// range are clamped.
	Priority int
	// Degradable marks the tenant's queries as tolerating staleness:
	// when admission sheds a degradable request and a cached answer
	// exists, the proxy serves the stale answer instead of rejecting.
	Degradable bool
}

// AdmissionConfig wires an admission policy and its tenant table into a
// Proxy.
type AdmissionConfig struct {
	// Policy names the factory-registered admission policy:
	// "always-admit", "token-bucket", "priority", "reject-all". Empty
	// disables admission control entirely (no policy, no queue — the
	// pre-admission fast path).
	Policy string
	// Tenants maps tenant IDs to their quotas. Tenants not present use
	// Default.
	Tenants map[uint32]TenantConfig
	// Default is the configuration for tenants absent from Tenants.
	Default TenantConfig
	// Capacity is the provisioned upstream capacity in requests/sec,
	// used by the priority policy's utilization shedder. Zero disables
	// priority shedding (everything admits).
	Capacity float64
	// QueueDepth bounds each tenant's fair-queue backlog; a request
	// arriving with the tenant's queue full is shed immediately. Zero
	// means 64.
	QueueDepth int
	// MaxConcurrent caps concurrent upstream operations across all
	// tenants (the fair queue's service slots). Zero means the proxy's
	// PoolSize.
	MaxConcurrent int
}

// tenant returns the effective configuration for a tenant.
func (c *AdmissionConfig) tenant(id uint32) TenantConfig {
	if tc, ok := c.Tenants[id]; ok {
		return tc
	}
	return c.Default
}

// priority returns the tenant's clamped priority.
func (c *AdmissionConfig) priority(id uint32) int {
	p := c.tenant(id).Priority
	if p < 0 {
		return 0
	}
	if p > 3 {
		return 3
	}
	return p
}

// weight returns the tenant's WFQ weight, defaulting to 1.
func (c *AdmissionConfig) weight(id uint32) float64 {
	if w := c.tenant(id).Weight; w > 0 {
		return w
	}
	return 1
}

// PolicyFactory builds a policy from the admission configuration.
type PolicyFactory func(cfg AdmissionConfig) Policy

var (
	policyMu        sync.RWMutex
	policyFactories = map[string]PolicyFactory{}
)

// RegisterPolicy adds a named policy factory; built-in policies
// register themselves at init. Registering a duplicate name panics —
// policy wiring is a construction-time concern.
func RegisterPolicy(name string, f PolicyFactory) {
	policyMu.Lock()
	defer policyMu.Unlock()
	if _, dup := policyFactories[name]; dup {
		panic(fmt.Sprintf("pmproxy: duplicate admission policy %q", name))
	}
	policyFactories[name] = f
}

// NewPolicy builds the named admission policy, or an error naming the
// registered policies if the name is unknown.
func NewPolicy(name string, cfg AdmissionConfig) (Policy, error) {
	policyMu.RLock()
	f, ok := policyFactories[name]
	policyMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("pmproxy: unknown admission policy %q (have %v)", name, PolicyNames())
	}
	return f(cfg), nil
}

// PolicyNames lists the registered admission policies, sorted.
func PolicyNames() []string {
	policyMu.RLock()
	defer policyMu.RUnlock()
	names := make([]string, 0, len(policyFactories))
	for n := range policyFactories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	RegisterPolicy("always-admit", func(AdmissionConfig) Policy { return alwaysAdmit{} })
	RegisterPolicy("reject-all", func(AdmissionConfig) Policy { return rejectAll{} })
	RegisterPolicy("token-bucket", newTokenBucket)
	RegisterPolicy("priority", newPriorityShedder)
}

// alwaysAdmit is the no-op policy: every request proceeds. It exists so
// the full admission plumbing (tenant accounting, fair queueing,
// breakers) can run with shedding disabled — the control arm of an
// overload experiment.
type alwaysAdmit struct{}

func (alwaysAdmit) Name() string             { return "always-admit" }
func (alwaysAdmit) Admit(AdmitRequest) error { return nil }

// rejectAll sheds everything: the drain/maintenance policy, and the
// degenerate case unit tests pin down.
type rejectAll struct{}

func (rejectAll) Name() string { return "reject-all" }
func (rejectAll) Admit(AdmitRequest) error {
	return fmt.Errorf("%w: policy reject-all", ErrAdmissionRejected)
}

// tokenBucket enforces per-tenant rate quotas: each tenant holds a
// bucket refilled at Rate tokens/sec up to Burst, and a request costing
// more tokens than the bucket holds is shed. All refill timing derives
// from AdmitRequest.Now, so the policy is exact under virtual time and
// its concurrent behaviour has a counting oracle: at a frozen clock a
// burst-B bucket admits exactly floor(B) cost-1 requests.
type tokenBucket struct {
	cfg AdmissionConfig

	mu      sync.Mutex
	buckets map[uint32]*bucket
}

type bucket struct {
	level float64
	last  int64 // Now of the last refill
}

func newTokenBucket(cfg AdmissionConfig) Policy {
	return &tokenBucket{cfg: cfg, buckets: make(map[uint32]*bucket)}
}

func (t *tokenBucket) Name() string { return "token-bucket" }

func (t *tokenBucket) Admit(req AdmitRequest) error {
	tc := t.cfg.tenant(req.Tenant)
	if tc.Rate <= 0 {
		return fmt.Errorf("%w: tenant %d has no quota", ErrAdmissionRejected, req.Tenant)
	}
	burst := tc.Burst
	if burst <= 0 {
		burst = tc.Rate
		if burst < 1 {
			burst = 1
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	b, ok := t.buckets[req.Tenant]
	if !ok {
		// A new bucket starts full: the tenant can spend its burst
		// immediately, which is what makes refill boundaries testable.
		b = &bucket{level: burst, last: req.Now}
		t.buckets[req.Tenant] = b
	}
	if req.Now > b.last {
		b.level += tc.Rate * float64(req.Now-b.last) / 1e9
		if b.level > burst {
			b.level = burst
		}
		b.last = req.Now
	}
	cost := float64(req.Cost)
	if b.level < cost {
		return fmt.Errorf("%w: tenant %d over rate quota (%.3g tokens, need %g)",
			ErrAdmissionRejected, req.Tenant, b.level, cost)
	}
	b.level -= cost
	return nil
}

// priorityShedder sheds by priority under load: a shared leaky bucket
// tracks recent demand (draining at Capacity requests/sec, again purely
// from Now), and a request admits only while the backlog level is below
// its priority's share of the bucket — priority 0 may fill the whole
// bucket, priority 3 only the first quarter. As offered load pushes the
// level up, low priorities shed first and the highest priority sheds
// last, which is exactly the inversion-free ordering the unit tests
// pin.
type priorityShedder struct {
	cfg   AdmissionConfig
	depth float64 // bucket depth: one second of capacity

	mu    sync.Mutex
	level float64
	last  int64
}

func newPriorityShedder(cfg AdmissionConfig) Policy {
	return &priorityShedder{cfg: cfg, depth: cfg.Capacity}
}

func (p *priorityShedder) Name() string { return "priority" }

func (p *priorityShedder) Admit(req AdmitRequest) error {
	if p.cfg.Capacity <= 0 {
		return nil // unprovisioned: nothing to shed against
	}
	prio := req.Priority
	if prio < 0 {
		prio = 0
	}
	if prio > 3 {
		prio = 3
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if req.Now > p.last {
		p.level -= p.cfg.Capacity * float64(req.Now-p.last) / 1e9
		if p.level < 0 {
			p.level = 0
		}
		p.last = req.Now
	}
	cost := float64(req.Cost)
	// Priority k may fill (4-k)/4 of the bucket: demand beyond capacity
	// raises the level until the low priorities hit their ceilings.
	ceiling := p.depth * float64(4-prio) / 4
	if p.level+cost > ceiling {
		return fmt.Errorf("%w: priority %d ceiling reached (level %.3g of %.3g)",
			ErrAdmissionRejected, prio, p.level, ceiling)
	}
	p.level += cost
	return nil
}

// IsShed reports whether err is a typed admission rejection. It is the
// check chaos trials and load generators use to separate sheds from
// real failures.
func IsShed(err error) bool { return errors.Is(err, ErrAdmissionRejected) }
