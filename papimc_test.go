package papimc_test

// End-to-end exercise of the public façade: everything a downstream user
// touches, through the root package only.

import (
	"errors"
	"testing"

	"papimc"
	"papimc/internal/harness"
	"papimc/internal/model"
	"papimc/internal/papi"
	"papimc/internal/simtime"
)

func TestPublicQuickstartFlow(t *testing.T) {
	tb, err := papimc.NewTestbed(papimc.Summit(), 1, papimc.Options{Seed: 1, DisableNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	lib, _, err := tb.NewLibrary()
	if err != nil {
		t.Fatal(err)
	}
	es := lib.NewEventSet()
	if err := es.AddAll(
		"pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value:cpu87",
		"pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_WRITE_BYTES.value:cpu87",
	); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	tb.Nodes[0].Play(0, papimc.Traffic{
		ReadBytes:  8 << 20,
		WriteBytes: 4 << 20,
		Duration:   20 * simtime.Millisecond,
	}, 8)
	tb.Clock.Advance(50 * simtime.Millisecond)
	vals, err := es.Stop()
	if err != nil {
		t.Fatal(err)
	}
	// Channel 0 of 8 on ideal counters.
	if vals[0] != (8<<20)/8 || vals[1] != (4<<20)/8 {
		t.Errorf("values = %v, want [%d %d]", vals, (8<<20)/8, (4<<20)/8)
	}
}

func TestPublicPermissionStory(t *testing.T) {
	tb, err := papimc.NewTestbed(papimc.Summit(), 1, papimc.Options{DisableNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	lib, _, err := tb.NewLibrary()
	if err != nil {
		t.Fatal(err)
	}
	es := lib.NewEventSet()
	if err := es.Add("power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=0"); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); !errors.Is(err, papi.ErrPermission) {
		t.Errorf("Summit direct start err = %v, want ErrPermission", err)
	}
}

func TestPublicMachines(t *testing.T) {
	for _, m := range []papimc.Machine{papimc.Summit(), papimc.Tellico(), papimc.Skylake()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestPublicSweepAndFigures(t *testing.T) {
	pts, err := papimc.GEMMSweep(harness.GEMMConfig{
		Machine: papimc.Tellico(),
		Batched: true,
		Route:   papimc.Direct,
		Reps:    harness.FixedReps(2),
		Sizes:   []int64{256},
		Options: papimc.Options{DisableNoise: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].ReadError() != 0 {
		t.Errorf("ideal sweep error = %v", pts[0].ReadError())
	}
	if got := len(papimc.AllFigures()); got != 20 {
		t.Errorf("AllFigures = %d, want 20", got)
	}
	// Type aliases line up with the internal packages.
	var _ papimc.Context = model.Serial(papimc.Summit())
	var _ papimc.Point = pts[0]
}
