// Package papimc is a from-scratch reproduction of "Memory Traffic and
// Complete Application Profiling with PAPI Multi-Component Measurements"
// (Barry, Jagode, Danalis, Dongarra — IPDPS 2023) as a self-contained Go
// system: a PAPI-like multi-component measurement library, a Performance
// Co-Pilot daemon and client, and a simulated IBM POWER9 testbed (nest
// counters, caches with store bypass and slice borrowing, V100 GPUs,
// InfiniBand) that the library measures.
//
// This top-level package re-exports the pieces a downstream user needs:
//
//	tb, _ := papimc.NewTestbed(papimc.Summit(), 1, papimc.Options{})
//	lib, _, _ := tb.NewLibrary()
//	es := lib.NewEventSet()
//	es.Add("pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value:cpu87")
//	es.Start()
//	// ... run work on tb ...
//	values, _ := es.Stop()
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
package papimc

import (
	"papimc/internal/arch"
	"papimc/internal/figures"
	"papimc/internal/harness"
	"papimc/internal/model"
	"papimc/internal/node"
	"papimc/internal/papi"
	"papimc/internal/profile"
	"papimc/internal/simtime"
)

// Machine descriptions (Section I).
type Machine = arch.Machine

// Summit is the 2×22-core POWER9 + 6×V100 node; nest counters are only
// reachable via PCP.
func Summit() Machine { return arch.Summit() }

// Tellico is the 2×16-core POWER9 testbed with privileged nest access.
func Tellico() Machine { return arch.Tellico() }

// Skylake is the Intel system of Section III's cross-check.
func Skylake() Machine { return arch.Skylake() }

// Measurement library (the paper's primary artifact).
type (
	// Library is the PAPI-like component registry.
	Library = papi.Library
	// EventSet is the start/read/stop counter-group lifecycle.
	EventSet = papi.EventSet
	// EventInfo describes one available event.
	EventInfo = papi.EventInfo
	// Component is the interface counter sources implement.
	Component = papi.Component
)

// Testbed construction.
type (
	// Testbed is a set of simulated nodes with the measurement plane
	// (PMCD daemon, PAPI components) wired up.
	Testbed = node.Testbed
	// Node is one compute node of a testbed.
	Node = node.Node
	// Options tunes testbed construction (seed, ideal counters).
	Options = node.Options
	// Route selects the counter-access path (ViaPCP or Direct).
	Route = node.Route
)

// Counter-access routes.
const (
	ViaPCP = node.ViaPCP
	Direct = node.Direct
)

// NewTestbed builds nodes of machine m with a running PMCD daemon.
func NewTestbed(m Machine, numNodes int, opts Options) (*Testbed, error) {
	return node.NewTestbed(m, numNodes, opts)
}

// Traffic modelling and experiments.
type (
	// Context describes a kernel's execution environment for the
	// analytic traffic engine.
	Context = model.Context
	// Traffic is a predicted (read, write, duration) volume.
	Traffic = model.Traffic
	// Point is one measured problem size of an accuracy sweep.
	Point = harness.Point
	// Duration is simulated time.
	Duration = simtime.Duration
	// Time is a simulated instant.
	Time = simtime.Time
)

// Experiment entry points (see internal/figures for every table/figure).
var (
	// GEMMSweep runs the Figs. 2–4 experiment.
	GEMMSweep = harness.GEMMSweep
	// CappedGEMVSweep runs the Fig. 5 experiment.
	CappedGEMVSweep = harness.CappedGEMVSweep
	// ProfileRun samples an EventSet across workload phases (Figs. 11–12).
	ProfileRun = profile.Run
	// AllFigures lists every table/figure generator.
	AllFigures = figures.All
)
