// Package report renders experiment results as aligned text tables, CSV,
// and simple ASCII log-log charts — the output formats of the cmd tools
// and the benchmark harness.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells (stringified with %v).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e6 || math.Abs(v) < 1e-3:
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Write renders the table, right-aligning numeric-looking cells.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	for i, h := range t.Headers {
		fmt.Fprintf(&b, "%-*s", widths[i]+2, h)
	}
	b.WriteByte('\n')
	for i := range t.Headers {
		b.WriteString(strings.Repeat("-", widths[i]))
		b.WriteString("  ")
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, cell := range row {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, cell)
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV (cells containing commas or quotes
// are quoted).
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// Series is one line of a chart.
type Series struct {
	Name string
	X, Y []float64
}

// Chart renders series as an ASCII scatter with optional log axes —
// enough to eyeball the Figs. 2–9 shapes in a terminal.
type Chart struct {
	Title       string
	XLabel      string
	YLabel      string
	LogX, LogY  bool
	Width       int // plot columns (default 72)
	Height      int // plot rows (default 20)
	SeriesMarks string
	SeriesList  []Series
}

// Add appends a series.
func (c *Chart) Add(s Series) { c.SeriesList = append(c.SeriesList, s) }

// Write renders the chart.
func (c *Chart) Write(w io.Writer) error {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 20
	}
	marks := c.SeriesMarks
	if marks == "" {
		marks = "*o+x#@%&"
	}
	tx := func(v float64) float64 {
		if c.LogX {
			return math.Log10(v)
		}
		return v
	}
	ty := func(v float64) float64 {
		if c.LogY {
			return math.Log10(v)
		}
		return v
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range c.SeriesList {
		for i := range s.X {
			x, y := tx(s.X[i]), ty(s.Y[i])
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			any = true
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if !any {
		_, err := fmt.Fprintf(w, "%s: no data\n", c.Title)
		return err
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.SeriesList {
		mark := marks[si%len(marks)]
		for i := range s.X {
			x, y := tx(s.X[i]), ty(s.Y[i])
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			col := int((x - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((y-minY)/(maxY-minY)*float64(height-1))
			grid[row][col] = mark
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for _, row := range grid {
		b.WriteString("| ")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("+" + strings.Repeat("-", width+1) + "\n")
	fmt.Fprintf(&b, "  x: %s [%.3g .. %.3g]%s   y: %s [%.3g .. %.3g]%s\n",
		c.XLabel, unTx(minX, c.LogX), unTx(maxX, c.LogX), logNote(c.LogX),
		c.YLabel, unTx(minY, c.LogY), unTx(maxY, c.LogY), logNote(c.LogY))
	for si, s := range c.SeriesList {
		fmt.Fprintf(&b, "  %c %s\n", marks[si%len(marks)], s.Name)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func unTx(v float64, log bool) float64 {
	if log {
		return math.Pow(10, v)
	}
	return v
}

func logNote(log bool) string {
	if log {
		return " (log)"
	}
	return ""
}
