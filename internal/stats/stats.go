// Package stats implements the statistical machinery the paper uses to turn
// raw counter readings into reported measurements: aggregation across
// repetitions (min / median / mean, per Barry et al. 2021 [9]) and the
// adaptive repetition-count scheme of Equation 5.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by aggregations over empty samples.
var ErrEmpty = errors.New("stats: empty sample")

// Min returns the smallest value in xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest value in xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Median returns the median of xs (average of the two central values for
// even-length samples). The input is not modified.
func Median(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2], nil
	}
	return (cp[n/2-1] + cp[n/2]) / 2, nil
}

// StdDev returns the sample standard deviation (n-1 denominator) of xs.
// A single-element sample has standard deviation 0.
func StdDev(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if len(xs) == 1 {
		return 0, nil
	}
	mean, _ := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1)), nil
}

// Summary bundles the descriptive statistics of a sample.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Median float64
	StdDev float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	mn, _ := Min(xs)
	mx, _ := Max(xs)
	mean, _ := Mean(xs)
	med, _ := Median(xs)
	sd, _ := StdDev(xs)
	return Summary{N: len(xs), Min: mn, Max: mx, Mean: mean, Median: med, StdDev: sd}, nil
}

// AdaptiveRepetitions implements Equation 5 of the paper:
//
//	Repetitions(N) = ⌊514 − 0.246·N⌋  for N < 2048
//	Repetitions(N) = 10               for N ≥ 2048
//
// which yields ~500 repetitions for small problem sizes (whose
// measurements are noise-dominated) dropping linearly to 10 for large
// ones. The result is never smaller than 10.
func AdaptiveRepetitions(n int) int {
	if n >= 2048 {
		return 10
	}
	r := int(math.Floor(514 - 0.246*float64(n)))
	if r < 10 {
		r = 10
	}
	return r
}

// RelativeError returns |measured−expected| / expected. It is the accuracy
// metric used throughout EXPERIMENTS.md. expected must be non-zero.
func RelativeError(measured, expected float64) float64 {
	return math.Abs(measured-expected) / math.Abs(expected)
}
