package pcp

import (
	"bufio"
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"papimc/internal/simtime"
)

// Metric is one exported metric: a name and a privileged read function.
type Metric struct {
	Name string
	// Read returns the metric value as of simulated time t. The daemon
	// holds whatever credential Read needs; clients never do.
	Read func(t simtime.Time) (uint64, error)
}

// metricTable is the daemon's immutable metric namespace. Register
// publishes a new table (copy-on-write) instead of mutating this one, so
// readers navigate it without locks.
type metricTable struct {
	metrics []Metric          // PMID = index+1
	byName  map[string]uint32 // never written after publication
	names   []NameEntry       // precomputed Names() answer
}

// snapshot is one immutable published sample: every metric's value as of
// one read of the clock, bound to the table it was sampled against.
// Fetches serve from the current snapshot with zero locking; a snapshot
// is never modified after publication.
type snapshot struct {
	table  *metricTable
	at     simtime.Time
	values []FetchValue // values[i] is table.metrics[i], PMID i+1
}

// Daemon is the PMCD analogue: it samples its metrics at a fixed
// interval of simulated time and serves the latest sample to clients.
//
// Serving is lock-free in the steady state: the current sample is an
// immutable snapshot published through an atomic pointer, so concurrent
// fetches scale with cores instead of serializing on a daemon mutex.
// When the snapshot is older than the sampling interval (or the
// namespace grew), exactly one fetching goroutine wins a CAS and
// resamples — the single-flight resample — while the rest keep serving
// the previous snapshot.
type Daemon struct {
	clock    *simtime.Clock
	interval simtime.Duration

	table    atomic.Pointer[metricTable]
	snap     atomic.Pointer[snapshot]
	sampling atomic.Bool // CAS single-flight gate for resampling
	regMu    sync.Mutex  // serializes Register's copy-on-write

	ln        net.Listener
	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
}

// NewDaemon builds a daemon sampling the given metrics every interval.
// Metric names must be unique; PMIDs are assigned in sorted-name order.
func NewDaemon(clock *simtime.Clock, interval simtime.Duration, metrics []Metric) (*Daemon, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("pcp: non-positive sample interval %d", interval)
	}
	ms := append([]Metric(nil), metrics...)
	sort.Slice(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name })
	byName := make(map[string]uint32, len(ms))
	for i, m := range ms {
		if m.Read == nil {
			return nil, fmt.Errorf("pcp: metric %q has no reader", m.Name)
		}
		if _, dup := byName[m.Name]; dup {
			return nil, fmt.Errorf("pcp: duplicate metric %q", m.Name)
		}
		byName[m.Name] = uint32(i + 1)
	}
	d := &Daemon{
		clock:    clock,
		interval: interval,
		closed:   make(chan struct{}),
		conns:    make(map[net.Conn]struct{}),
	}
	d.table.Store(newTable(ms, byName))
	return d, nil
}

func newTable(ms []Metric, byName map[string]uint32) *metricTable {
	names := make([]NameEntry, len(ms))
	for i, m := range ms {
		names[i] = NameEntry{PMID: uint32(i + 1), Name: m.Name}
	}
	return &metricTable{metrics: ms, byName: byName, names: names}
}

// Names returns the daemon's metric table.
func (d *Daemon) Names() []NameEntry {
	return append([]NameEntry(nil), d.table.Load().names...)
}

// Register adds a metric to a running daemon's namespace — the analogue
// of a PCP agent (PMDA) coming online after pmcd has started. The new
// metric gets the next free PMID (registration order, not sorted-name
// order) and becomes fetchable immediately: publishing the new table
// invalidates the current snapshot, so the next fetch resamples.
func (d *Daemon) Register(m Metric) error {
	if m.Read == nil {
		return fmt.Errorf("pcp: metric %q has no reader", m.Name)
	}
	d.regMu.Lock()
	defer d.regMu.Unlock()
	old := d.table.Load()
	if _, dup := old.byName[m.Name]; dup {
		return fmt.Errorf("pcp: duplicate metric %q", m.Name)
	}
	ms := make([]Metric, len(old.metrics), len(old.metrics)+1)
	copy(ms, old.metrics)
	ms = append(ms, m)
	byName := make(map[string]uint32, len(ms))
	for k, v := range old.byName {
		byName[k] = v
	}
	byName[m.Name] = uint32(len(ms))
	d.table.Store(newTable(ms, byName))
	return nil
}

// current returns a snapshot that is fresh (younger than the sampling
// interval) and consistent with the current metric table, resampling if
// needed. Only one goroutine resamples at a time; losers of that race
// serve the previous snapshot, which is exactly the interval-staleness
// contract the daemon already has.
func (d *Daemon) current() *snapshot {
	now := d.clock.Now()
	tab := d.table.Load()
	s := d.snap.Load()
	if s != nil && s.table == tab && now.Sub(s.at) < d.interval {
		return s
	}
	if d.sampling.CompareAndSwap(false, true) {
		// Re-check under the gate: another goroutine may have published
		// a fresh snapshot between our load and the CAS.
		tab = d.table.Load()
		s = d.snap.Load()
		now = d.clock.Now()
		if s == nil || s.table != tab || now.Sub(s.at) >= d.interval {
			s = d.resample(tab, now)
			d.snap.Store(s)
		}
		d.sampling.Store(false)
		return s
	}
	// Lost the single-flight race. Serve whatever is published; before
	// the very first sample exists, wait for the winner.
	for {
		if s = d.snap.Load(); s != nil {
			return s
		}
		runtime.Gosched()
	}
}

// resample reads every metric in the table as of now and builds a new
// immutable snapshot. It runs on exactly one goroutine at a time (the
// single-flight winner), so metric Read callbacks are never invoked
// concurrently by the same daemon.
func (d *Daemon) resample(tab *metricTable, now simtime.Time) *snapshot {
	vals := make([]FetchValue, len(tab.metrics))
	for i, m := range tab.metrics {
		v, err := m.Read(now)
		if err != nil {
			vals[i] = FetchValue{PMID: uint32(i + 1), Status: StatusValueError}
			continue
		}
		vals[i] = FetchValue{PMID: uint32(i + 1), Status: StatusOK, Value: v}
	}
	return &snapshot{table: tab, at: now, values: vals}
}

// Fetch returns the daemon's current view of the requested PMIDs. It is
// exported for in-process use and exercised by the network handler.
func (d *Daemon) Fetch(pmids []uint32) FetchResult {
	return d.FetchInto(pmids, nil)
}

// FetchInto is Fetch appending the values to vals (pass a previous
// result's Values[:0] to serve from a reused buffer without allocating).
// It takes no locks: values, PMIDs and timestamp all come from one
// published snapshot, so a result is never torn across samples.
func (d *Daemon) FetchInto(pmids []uint32, vals []FetchValue) FetchResult {
	s := d.current()
	for _, id := range pmids {
		if id == 0 || int(id) > len(s.values) {
			vals = append(vals, FetchValue{PMID: id, Status: StatusNoSuchPMID})
			continue
		}
		vals = append(vals, s.values[id-1])
	}
	return FetchResult{Timestamp: int64(s.at), Values: vals}
}

// FetchAll returns the daemon's current view of every metric, in PMID
// order — the batch fetch, one snapshot read for the whole namespace.
func (d *Daemon) FetchAll() FetchResult {
	return d.FetchAllInto(nil)
}

// FetchAllInto is FetchAll appending the values to vals. Like
// FetchInto it takes no locks: the whole answer is one published
// snapshot, so it can never be torn across samples.
func (d *Daemon) FetchAllInto(vals []FetchValue) FetchResult {
	s := d.current()
	vals = append(vals, s.values...)
	return FetchResult{Timestamp: int64(s.at), Values: vals}
}

// FetchBatch answers one result per PMID set, all served from a single
// snapshot — the multi-EventSet fetch: every set sees the same
// timestamp and a mutually consistent view.
func (d *Daemon) FetchBatch(sets [][]uint32) []FetchResult {
	return d.FetchBatchInto(sets, nil)
}

// FetchBatchInto is FetchBatch decoding into results, reusing its outer
// array and each element's Values backing array. Like FetchInto it
// takes no locks.
func (d *Daemon) FetchBatchInto(sets [][]uint32, results []FetchResult) []FetchResult {
	s := d.current()
	for i, pmids := range sets {
		var res FetchResult
		if i < cap(results) {
			res = results[:i+1][i]
		}
		vals := res.Values[:0]
		for _, id := range pmids {
			if id == 0 || int(id) > len(s.values) {
				vals = append(vals, FetchValue{PMID: id, Status: StatusNoSuchPMID})
				continue
			}
			vals = append(vals, s.values[id-1])
		}
		results = append(results[:i], FetchResult{Timestamp: int64(s.at), Values: vals})
	}
	return results[:len(sets)]
}

// Start listens on addr (e.g. "127.0.0.1:0") and serves clients in the
// background until Close. It returns the bound address.
func (d *Daemon) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("pcp: listen: %w", err)
	}
	return d.StartOn(ln), nil
}

// StartOn serves clients on an existing listener until Close. It is the
// injection point for wrapped listeners (fault injection, custom
// transports). It returns the listener's address.
//
// Accepting is sharded per core: GOMAXPROCS goroutines block in Accept
// on the one listener (the kernel load-balances wakeups), so a
// connection burst is admitted in parallel instead of serializing on a
// single accept loop.
func (d *Daemon) StartOn(ln net.Listener) string {
	d.ln = ln
	n := runtime.GOMAXPROCS(0)
	d.wg.Add(n)
	for i := 0; i < n; i++ {
		go d.acceptLoop()
	}
	return ln.Addr().String()
}

// acceptBackoffMax caps the sleep between retries of a failing Accept.
const acceptBackoffMax = time.Second

func (d *Daemon) acceptLoop() {
	defer d.wg.Done()
	var backoff time.Duration
	for {
		conn, err := d.ln.Accept()
		if err != nil {
			select {
			case <-d.closed:
				return
			default:
			}
			// Transient accept errors (EMFILE, ECONNABORTED): back off
			// with a capped doubling sleep instead of spinning hot.
			if backoff == 0 {
				backoff = time.Millisecond
			} else if backoff *= 2; backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			select {
			case <-d.closed:
				return
			case <-time.After(backoff):
			}
			continue
		}
		backoff = 0
		d.connMu.Lock()
		d.conns[conn] = struct{}{}
		d.connMu.Unlock()
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			defer func() {
				conn.Close()
				d.connMu.Lock()
				delete(d.conns, conn)
				d.connMu.Unlock()
			}()
			d.serveConn(conn)
		}()
	}
}

// serveScratch is the per-connection reusable state of a serving loop:
// request payload, decoded PMIDs and sets, fetched values and encoded
// response, so steady-state fetch serving does not allocate.
type serveScratch struct {
	respBuf []byte
	pmids   []uint32
	sets    [][]uint32
	vals    []FetchValue
	batch   []FetchResult
}

// handleReq serves one decoded request PDU, returning the response type
// and payload (encoded into s.respBuf). It is shared by the lockstep
// and tagged serving loops.
func (d *Daemon) handleReq(typ uint8, payload []byte, s *serveScratch) (uint8, []byte) {
	switch typ {
	case PDUNamesReq:
		return PDUNamesResp, AppendNamesResp(s.respBuf[:0], d.table.Load().names)
	case PDUFetchReq:
		pmids, err := DecodeFetchReqInto(payload, s.pmids[:0])
		if err != nil {
			return PDUError, AppendError(s.respBuf[:0], err.Error())
		}
		s.pmids = pmids
		res := d.FetchInto(pmids, s.vals[:0])
		s.vals = res.Values
		return PDUFetchResp, AppendFetchResp(s.respBuf[:0], res)
	case PDUFetchAllReq:
		res := d.FetchAllInto(s.vals[:0])
		s.vals = res.Values
		return PDUFetchResp, AppendFetchResp(s.respBuf[:0], res)
	case PDUFetchBatchReq:
		sets, err := DecodeFetchBatchReqInto(payload, s.sets[:0])
		if err != nil {
			return PDUError, AppendError(s.respBuf[:0], err.Error())
		}
		s.sets = sets
		s.batch = d.FetchBatchInto(sets, s.batch[:0])
		return PDUFetchBatchResp, AppendFetchBatchResp(s.respBuf[:0], s.batch, nil, "")
	default:
		return PDUError, AppendError(s.respBuf[:0], fmt.Sprintf("unknown PDU type %d", typ))
	}
}

// serveConn handles one client connection: handshake, then a lockstep
// request/response loop. A PDUVersionReq negotiating Version2 or higher
// hands the connection to the tagged loop (ServeTagged); Version1
// clients never send one and stay in lockstep.
func (d *Daemon) serveConn(conn net.Conn) {
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	if err := ServerHandshake(br, bw); err != nil {
		return
	}
	var (
		payloadBuf []byte
		s          serveScratch
	)
	for {
		typ, payload, err := ReadPDUInto(br, payloadBuf)
		if err != nil {
			return
		}
		payloadBuf = payload
		var respType uint8
		var resp []byte
		var version uint32
		if typ == PDUVersionReq {
			respType, resp, version = NegotiateVersionV(payload, s.respBuf[:0])
			s.respBuf = resp
		} else {
			respType, resp = d.handleReq(typ, payload, &s)
		}
		if err := WritePDU(bw, respType, resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
		if version >= Version2 {
			serveTagged(conn, br, version >= Version3, func(typ uint8, tenant uint32, payload []byte) (uint8, []byte) {
				return d.handleReq(typ, payload, &s)
			})
			return
		}
	}
}

// NegotiateVersion answers a PDUVersionReq payload on the server side,
// appending the response to dst: the reply carries min(client max,
// server max), and tagged reports whether the connection must switch to
// tagged framing once the response is flushed. Exported for the other
// servers speaking the protocol (pmproxy, cluster). Servers that need
// the exact version (to pick tagged vs wide framing) use
// NegotiateVersionV instead.
func NegotiateVersion(payload, dst []byte) (respType uint8, resp []byte, tagged bool) {
	respType, resp, v := NegotiateVersionV(payload, dst)
	return respType, resp, v >= Version2
}

// NegotiateVersionV is NegotiateVersion returning the negotiated
// version itself: 0 on a malformed request (the response is then a
// PDUError), Version1 and up otherwise. At Version2 the connection
// switches to tagged frames after the response is flushed; at Version3
// and above, to wide (tenant-carrying) frames.
func NegotiateVersionV(payload, dst []byte) (respType uint8, resp []byte, version uint32) {
	peerMax, err := DecodeVersion(payload)
	if err != nil {
		return PDUError, AppendError(dst, err.Error()), 0
	}
	v := MaxVersion
	if peerMax < v {
		v = peerMax
	}
	return PDUVersionResp, AppendVersion(dst, v), v
}

// ServeTagged runs the Version2 serving loop on a negotiated
// connection: tagged frames in, tagged frames out, with writer-side
// coalescing — responses accumulate in a frameBatch and are flushed
// with one vectored write when no further request is already buffered,
// so a pipelined burst of n requests costs one read wakeup and one
// write syscall instead of n of each. Exported for the other servers
// speaking the protocol (pmproxy, cluster).
//
// handle may encode responses into reused buffers it owns; a response
// larger than the coalescing threshold is referenced zero-copy and
// flushed before the next request is read, so that reuse stays safe.
func ServeTagged(conn net.Conn, br *bufio.Reader, handle func(typ uint8, payload []byte) (respType uint8, resp []byte)) {
	serveTagged(conn, br, false, func(typ uint8, _ uint32, payload []byte) (uint8, []byte) {
		return handle(typ, payload)
	})
}

// ServeTaggedWide is ServeTagged for a Version3 connection: wide frames
// in and out, with each request's tenant passed to handle and echoed on
// the response frame. Exported for the other servers speaking the
// protocol (pmproxy, cluster).
func ServeTaggedWide(conn net.Conn, br *bufio.Reader, handle func(typ uint8, tenant uint32, payload []byte) (respType uint8, resp []byte)) {
	serveTagged(conn, br, true, handle)
}

// serveTagged is the shared Version2/Version3 serving loop; wide selects
// the frame format (and whether tenants are read and echoed).
func serveTagged(conn net.Conn, br *bufio.Reader, wide bool, handle func(typ uint8, tenant uint32, payload []byte) (respType uint8, resp []byte)) {
	var (
		payloadBuf []byte
		batch      frameBatch
	)
	for {
		if batch.empty() || br.Buffered() > 0 {
			// More input already buffered (or nothing pending): read
			// before flushing, so a burst coalesces into one write.
		} else if err := batch.flush(conn); err != nil {
			return
		}
		var (
			typ     uint8
			tag     uint32
			tenant  uint32
			payload []byte
			err     error
		)
		if wide {
			typ, tag, tenant, payload, err = ReadWidePDUInto(br, payloadBuf)
		} else {
			typ, tag, payload, err = ReadTaggedPDUInto(br, payloadBuf)
		}
		if err != nil {
			return
		}
		payloadBuf = payload
		respType, resp := handle(typ, tenant, payload)
		var direct bool
		if wide {
			direct, err = batch.appendWide(respType, tag, tenant, resp)
		} else {
			direct, err = batch.appendFrame(respType, tag, resp)
		}
		if err != nil {
			return
		}
		if direct || len(batch.small) >= serveFlushBytes {
			// Flush now: either the batch references resp zero-copy (the
			// next request would overwrite the scratch buffer it lives
			// in), or enough responses accumulated that holding more
			// would just grow the batch — writing applies backpressure
			// to a peer that streams requests without reading answers.
			if err := batch.flush(conn); err != nil {
				return
			}
		}
	}
}

// serveFlushBytes caps how many coalesced response bytes the tagged
// serving loop holds before forcing a flush.
const serveFlushBytes = 64 << 10

// Close stops the listener, disconnects clients, and waits for
// connection handlers to finish. It is idempotent.
func (d *Daemon) Close() error {
	var err error
	d.closeOnce.Do(func() {
		close(d.closed)
		if d.ln != nil {
			err = d.ln.Close()
		}
		d.connMu.Lock()
		for conn := range d.conns {
			conn.Close()
		}
		d.connMu.Unlock()
		d.wg.Wait()
	})
	return err
}

// ServerHandshake performs the daemon side of connection setup: the
// client sends Magic, the server echoes it. Exported so other servers
// speaking the protocol (pmproxy) share the exact semantics. The magic
// is compared in place inside the bufio.Reader's buffer (Peek/Discard),
// so the handshake allocates nothing per connection.
func ServerHandshake(br *bufio.Reader, bw *bufio.Writer) error {
	magic, err := br.Peek(len(Magic))
	if err != nil {
		return err
	}
	if string(magic) != Magic {
		return fmt.Errorf("%w: bad handshake %q", ErrProtocol, magic)
	}
	if _, err := br.Discard(len(Magic)); err != nil {
		return err
	}
	if _, err := bw.WriteString(Magic); err != nil {
		return err
	}
	return bw.Flush()
}
