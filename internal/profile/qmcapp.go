package profile

import (
	"fmt"

	"papimc/internal/model"
	"papimc/internal/node"
	"papimc/internal/qmc"
	"papimc/internal/simtime"
	"papimc/internal/units"
)

// QMCAppConfig parameterizes the Fig. 12 workload: one rank of the
// QMCPACK example problem, which runs VMC without drift, VMC with
// drift, then DMC.
type QMCAppConfig struct {
	// Walkers scales the per-step memory traffic.
	Walkers int
	// PhaseDuration is the simulated length of each of the three
	// stages.
	PhaseDuration simtime.Duration
}

// QMCPhases builds the Fig. 12 timeline on socket 0 / GPU 0 of node 0.
// Each stage has a distinct hardware signature, which is exactly what
// the figure demonstrates (stages "distinguishable by monitoring
// separate hardware components simultaneously"):
//
//   - VMC-no-drift: steady walker sweeps — moderate memory traffic,
//     periodic short wavefunction-evaluation kernels on the GPU;
//   - VMC-drift: the drift adds gradient evaluations — more memory
//     traffic and denser GPU activity;
//   - DMC: branching doubles the traffic and adds walker-exchange
//     bursts on the network.
func QMCPhases(tb *node.Testbed, cfg QMCAppConfig) ([]Phase, error) {
	if cfg.Walkers <= 0 {
		return nil, fmt.Errorf("profile: need positive walker count, got %d", cfg.Walkers)
	}
	if cfg.PhaseDuration <= 0 {
		return nil, fmt.Errorf("profile: need positive phase duration, got %v", cfg.PhaseDuration)
	}
	if len(tb.Nodes) < 2 {
		return nil, fmt.Errorf("profile: QMC app needs >= 2 nodes for DMC walker exchange")
	}
	self, peer := tb.Nodes[0], tb.Nodes[1]
	if len(self.AllGPUs()) == 0 {
		return nil, fmt.Errorf("profile: machine %s has no GPUs", tb.Machine.Name)
	}
	dev := self.GPUs[0][0]

	// Per-second walker-sweep traffic: each walker's configuration,
	// wavefunction tables and accumulators are touched every step.
	walkerBytes := int64(cfg.Walkers) * 2 * units.KiB
	sweepsPerSec := 2000.0

	mkTraffic := func(scale float64, readFrac float64) model.Traffic {
		total := float64(walkerBytes) * sweepsPerSec * scale * cfg.PhaseDuration.Seconds()
		return model.Traffic{
			ReadBytes:  int64(total * readFrac),
			WriteBytes: int64(total * (1 - readFrac)),
			Duration:   cfg.PhaseDuration,
		}
	}
	// gpuBurst duty-cycles the device at sampling-window granularity:
	// busyWindows of every period windows run a full-window kernel, so
	// the instantaneous NVML samples alternate between busy and idle
	// with the phase's duty ratio — the spiky traces of Fig. 12.
	gpuBurst := func(busyWindows, period int) func(t0, t1 simtime.Time) {
		step := 0
		return func(t0, t1 simtime.Time) {
			if step%period < busyWindows {
				dev.BusyFor(t1.Sub(t0), t0)
			}
			step++
		}
	}
	combine := func(fs ...func(t0, t1 simtime.Time)) func(t0, t1 simtime.Time) {
		return func(t0, t1 simtime.Time) {
			for _, f := range fs {
				f(t0, t1)
			}
		}
	}

	vmc1 := mkTraffic(1.0, 0.65)
	vmc2 := mkTraffic(1.6, 0.6)
	dmc := mkTraffic(2.4, 0.55)
	exchangeBytes := int64(cfg.Walkers) * 256 // DMC load balancing

	phases := []Phase{
		{
			Name:     string(qmc.PhaseVMCNoDrift),
			Duration: cfg.PhaseDuration,
			Emit: combine(
				emitTraffic(self, 0, vmc1),
				gpuBurst(1, 3), // 1/3 GPU duty
			),
		},
		{
			Name:     string(qmc.PhaseVMCDrift),
			Duration: cfg.PhaseDuration,
			Emit: combine(
				emitTraffic(self, 0, vmc2),
				gpuBurst(2, 3), // 2/3 GPU duty
			),
		},
		{
			Name:     string(qmc.PhaseDMC),
			Duration: cfg.PhaseDuration,
			Emit: combine(
				emitTraffic(self, 0, dmc),
				gpuBurst(1, 1), // continuous

				func(t0, t1 simtime.Time) {
					// Branching redistributes walkers across ranks.
					tb.Fabric.Transfer(self.NIC, peer.NIC, exchangeBytes, t0)
					tb.Fabric.Transfer(peer.NIC, self.NIC, exchangeBytes, t0)
				},
			),
		},
	}
	return phases, nil
}
