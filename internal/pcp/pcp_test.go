package pcp

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"papimc/internal/simtime"
)

// --- PDU round trips ---------------------------------------------------

func TestNamesRespRoundTrip(t *testing.T) {
	in := []NameEntry{{1, "a.b.c"}, {2, ""}, {7, "perfevent.hwcounters.x.value"}}
	out, err := DecodeNamesResp(EncodeNamesResp(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("entry %d = %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestFetchRespRoundTrip(t *testing.T) {
	in := FetchResult{
		Timestamp: -42,
		Values: []FetchValue{
			{PMID: 1, Status: StatusOK, Value: 1 << 60},
			{PMID: 9, Status: StatusNoSuchPMID, Value: 0},
		},
	}
	out, err := DecodeFetchResp(EncodeFetchResp(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Timestamp != in.Timestamp || len(out.Values) != 2 ||
		out.Values[0] != in.Values[0] || out.Values[1] != in.Values[1] {
		t.Errorf("round trip mismatch: %+v", out)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	full := EncodeFetchResp(FetchResult{Timestamp: 1, Values: []FetchValue{{PMID: 1}}})
	for cut := 1; cut < len(full); cut++ {
		if _, err := DecodeFetchResp(full[:cut]); !errors.Is(err, ErrProtocol) {
			t.Errorf("truncation at %d not detected: %v", cut, err)
		}
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	b := append(EncodeFetchReq([]uint32{1, 2}), 0xFF)
	if _, err := DecodeFetchReq(b); !errors.Is(err, ErrProtocol) {
		t.Errorf("trailing garbage not detected: %v", err)
	}
}

func TestPDURoundTripProperty(t *testing.T) {
	f := func(ts int64, pmids []uint32, statuses []int32, values []uint64) bool {
		res := FetchResult{Timestamp: ts}
		for i, id := range pmids {
			v := FetchValue{PMID: id}
			if i < len(statuses) {
				v.Status = statuses[i]
			}
			if i < len(values) {
				v.Value = values[i]
			}
			res.Values = append(res.Values, v)
		}
		out, err := DecodeFetchResp(EncodeFetchResp(res))
		if err != nil || out.Timestamp != ts || len(out.Values) != len(res.Values) {
			return false
		}
		for i := range res.Values {
			if out.Values[i] != res.Values[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNamesRoundTripProperty(t *testing.T) {
	f := func(names []string) bool {
		in := make([]NameEntry, len(names))
		for i, n := range names {
			in[i] = NameEntry{PMID: uint32(i), Name: n}
		}
		out, err := DecodeNamesResp(EncodeNamesResp(in))
		if err != nil || len(out) != len(in) {
			return false
		}
		for i := range in {
			if out[i] != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// --- daemon & client ---------------------------------------------------

func TestNewDaemonValidation(t *testing.T) {
	clock := simtime.NewClock()
	if _, err := NewDaemon(clock, 0, nil); err == nil {
		t.Error("expected error for zero interval")
	}
	dup := []Metric{
		{Name: "a", Read: func(simtime.Time) (uint64, error) { return 0, nil }},
		{Name: "a", Read: func(simtime.Time) (uint64, error) { return 0, nil }},
	}
	if _, err := NewDaemon(clock, 1, dup); err == nil {
		t.Error("expected error for duplicate metric")
	}
	if _, err := NewDaemon(clock, 1, []Metric{{Name: "x"}}); err == nil {
		t.Error("expected error for nil reader")
	}
}

func TestBadHandshakeRejected(t *testing.T) {
	clock := simtime.NewClock()
	d, err := NewDaemon(clock, simtime.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := d.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// A client that speaks the wrong magic gets disconnected.
	c, err := DialRaw(addr, "NOPE")
	if err == nil {
		c.Close()
		t.Error("expected handshake failure")
	}
	if err != nil && !strings.Contains(err.Error(), "handshake") && !errors.Is(err, ErrProtocol) {
		// Accept either: connection closed during handshake or explicit
		// protocol error.
		t.Logf("handshake failed as expected: %v", err)
	}
}

// --- satellite coverage: hostile PDUs, namespace growth, fan-out -------

// TestReadPDURejectsHostileLength: a corrupt/hostile length prefix must
// fail with the typed error before any allocation is attempted.
func TestReadPDURejectsHostileLength(t *testing.T) {
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF, PDUFetchReq} // claims a 4 GiB payload
	_, _, err := ReadPDU(bytes.NewReader(hdr))
	if !errors.Is(err, ErrPDUTooLarge) {
		t.Errorf("err = %v, want ErrPDUTooLarge", err)
	}
	if !errors.Is(err, ErrProtocol) {
		t.Errorf("ErrPDUTooLarge should wrap ErrProtocol; got %v", err)
	}
	// One past the limit is rejected; the limit itself is not.
	hdr = make([]byte, 5)
	binary.BigEndian.PutUint32(hdr, MaxPDUBytes+1)
	if _, _, err := ReadPDU(bytes.NewReader(hdr)); !errors.Is(err, ErrPDUTooLarge) {
		t.Errorf("limit+1 err = %v", err)
	}
	binary.BigEndian.PutUint32(hdr, 3)
	body := append(append([]byte(nil), hdr...), 1, 2, 3)
	if typ, payload, err := ReadPDU(bytes.NewReader(body)); err != nil || typ != 0 || len(payload) != 3 {
		t.Errorf("valid frame rejected: %v", err)
	}
}

func TestWritePDURejectsOversizePayload(t *testing.T) {
	var sink bytes.Buffer
	err := WritePDU(&sink, PDUFetchReq, make([]byte, MaxPDUBytes+1))
	if !errors.Is(err, ErrPDUTooLarge) {
		t.Errorf("err = %v, want ErrPDUTooLarge", err)
	}
	if sink.Len() != 0 {
		t.Error("oversize write emitted bytes")
	}
}
