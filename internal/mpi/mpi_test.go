package mpi

import (
	"sync/atomic"
	"testing"

	"papimc/internal/ib"
	"papimc/internal/simtime"
)

func TestSendRecv(t *testing.T) {
	c := New(2, nil, nil, nil)
	c.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, []complex128{1 + 2i, 3})
		} else {
			got := r.Recv(0)
			if len(got) != 2 || got[0] != 1+2i || got[1] != 3 {
				t.Errorf("received %v", got)
			}
		}
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	const ranks = 8
	c := New(ranks, nil, nil, nil)
	var before, after int32
	c.Run(func(r *Rank) {
		atomic.AddInt32(&before, 1)
		r.Barrier()
		if atomic.LoadInt32(&before) != ranks {
			t.Errorf("rank %d passed barrier before all arrived", r.ID())
		}
		atomic.AddInt32(&after, 1)
		r.Barrier()
		if atomic.LoadInt32(&after) != ranks {
			t.Errorf("rank %d passed second barrier early", r.ID())
		}
	})
}

func TestBarrierReusable(t *testing.T) {
	const ranks, rounds = 4, 10
	c := New(ranks, nil, nil, nil)
	var counter int32
	c.Run(func(r *Rank) {
		for i := 0; i < rounds; i++ {
			atomic.AddInt32(&counter, 1)
			r.Barrier()
			if v := atomic.LoadInt32(&counter); int(v) != ranks*(i+1) {
				t.Errorf("round %d: counter = %d, want %d", i, v, ranks*(i+1))
			}
			r.Barrier()
		}
	})
}

func TestAlltoallv(t *testing.T) {
	const ranks = 4
	c := New(ranks, nil, nil, nil)
	c.Run(func(r *Rank) {
		chunks := make([][]complex128, ranks)
		for d := 0; d < ranks; d++ {
			chunks[d] = []complex128{complex(float64(r.ID()), float64(d))}
		}
		got := r.Alltoallv(chunks)
		for s := 0; s < ranks; s++ {
			want := complex(float64(s), float64(r.ID()))
			if len(got[s]) != 1 || got[s][0] != want {
				t.Errorf("rank %d from %d: got %v, want %v", r.ID(), s, got[s], want)
			}
		}
	})
}

func TestAlltoallvAccountsFabricTraffic(t *testing.T) {
	const ranks = 4
	clock := simtime.NewClock()
	fabric := ib.NewFabric()
	eps := make([]*ib.Endpoint, ranks)
	for i := range eps {
		eps[i] = ib.NewEndpoint(1, nil)
	}
	c := New(ranks, fabric, eps, clock)
	const chunkElems = 100
	c.Run(func(r *Rank) {
		chunks := make([][]complex128, ranks)
		for d := range chunks {
			chunks[d] = make([]complex128, chunkElems)
		}
		r.Alltoallv(chunks)
	})
	// Each rank sends chunkElems×16 bytes to each of the 3 others.
	wantWords := uint64(3 * chunkElems * 16 / ib.WordBytes)
	for i, ep := range eps {
		recv, xmit := ep.Ports[0].Counters()
		if xmit != wantWords {
			t.Errorf("rank %d xmit = %d words, want %d", i, xmit, wantWords)
		}
		if recv != wantWords {
			t.Errorf("rank %d recv = %d words, want %d", i, recv, wantWords)
		}
	}
}

func TestSelfChunkSkipsFabric(t *testing.T) {
	clock := simtime.NewClock()
	fabric := ib.NewFabric()
	eps := []*ib.Endpoint{ib.NewEndpoint(1, nil)}
	c := New(1, fabric, eps, clock)
	c.Run(func(r *Rank) {
		got := r.Alltoallv([][]complex128{{42}})
		if got[0][0] != 42 {
			t.Errorf("self chunk = %v", got[0])
		}
	})
	recv, xmit := eps[0].Ports[0].Counters()
	if recv != 0 || xmit != 0 {
		t.Error("self chunk touched the NIC")
	}
}

func TestRunPropagatesPanics(t *testing.T) {
	c := New(2, nil, nil, nil)
	defer func() {
		if recover() == nil {
			t.Error("expected rank panic to propagate")
		}
	}()
	c.Run(func(r *Rank) {
		if r.ID() == 1 {
			panic("rank 1 failed")
		}
		// Rank 0 must not deadlock waiting for rank 1: nothing to do.
	})
}

func TestInvalidUses(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero size", func() { New(0, nil, nil, nil) })
	mustPanic("endpoint mismatch", func() {
		New(2, ib.NewFabric(), []*ib.Endpoint{ib.NewEndpoint(1, nil)}, nil)
	})
	c := New(2, nil, nil, nil)
	mustPanic("bad rank", func() { c.Rank(5) })
	mustPanic("self send", func() { c.Rank(0).Send(0, nil) })
	mustPanic("self recv", func() { c.Rank(0).Recv(0) })
	mustPanic("bad alltoall", func() { c.Rank(0).Alltoallv(nil) })
}
